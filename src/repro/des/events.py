"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence.  It moves through three
states:

``pending``
    created, not yet scheduled; processes may add callbacks / wait.
``triggered``
    given a value (or an exception) and placed on the event calendar.
``processed``
    popped from the calendar; its callbacks have run.

:class:`Process` doubles as an event: it triggers when its generator
returns (value = the generator's return value) or raises (the event
fails with that exception).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.des.errors import Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.environment import Environment

# Sentinel distinguishing "no value yet" from a legitimate None value.
_PENDING = object()

Callback = Callable[["Event"], None]


class Event:
    """A one-shot occurrence in virtual time.

    Parameters
    ----------
    env:
        The owning :class:`~repro.des.environment.Environment`.

    Notes
    -----
    Events support ``succeed(value)`` and ``fail(exception)``; both may
    be called at most once.  Waiting is expressed by a process
    ``yield``-ing the event.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callback] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set True once a failed event's exception has been delivered
        #: to at least one waiter (used to diagnose unhandled failures).
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None  # type: ignore[return-value]

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = 1) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns ``self`` so triggering can be chained/returned.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = 1) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiting processes will have the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        if event.ok:
            self.succeed(event.value)
        else:
            event.defused = True
            self.fail(event.value)

    # -- misc ---------------------------------------------------------------
    def add_callback(self, callback: Callback) -> None:
        """Run ``callback(self)`` when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} already processed")
        self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # Allow `yield evt & other` / `yield evt | other` sugar.
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """Event that triggers ``delay`` units of virtual time after creation.

    Parameters
    ----------
    env:
        Owning environment.
    delay:
        Non-negative virtual-time delay.
    value:
        Value delivered when the timeout fires (default ``None``).
    """

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay


class Initialize(Event):
    """Internal event that kicks off a new :class:`Process` at time now."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=0)


class Process(Event):
    """A running simulated process wrapping a generator.

    The generator yields :class:`Event` objects; the process is resumed
    with the event's value (or the event's exception thrown in).  The
    process *is itself an event* that triggers when the generator
    finishes, so processes can wait on each other::

        def child(env):
            yield env.timeout(5)
            return 42

        def parent(env):
            result = yield env.process(child(env))
            assert result == 42
    """

    def __init__(self, env: "Environment", generator: Generator, name: str | None = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when
        #: finished or about to be resumed).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target
        event itself is unaffected and may still trigger later).
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self.name} is being initialised; cannot interrupt")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        # Detach from current target so the stale wakeup is ignored.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=0)

    # -- internal -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        sanitizer = self.env.sanitizer
        if sanitizer is not None:
            sanitizer.note(
                f"t={self.env.now:.6g}: resume {self.name} "
                f"({'ok' if event._ok else 'throw'})"
            )
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.callbacks is None:
            # Already processed: resume immediately at the current time.
            immediate = Event(self.env)
            immediate._ok = next_event._ok
            immediate._value = next_event._value
            immediate.defused = True
            immediate.callbacks.append(self._resume)
            self._target = immediate
            self.env.schedule(immediate, priority=0)
        else:
            self._target = next_event
            next_event.add_callback(self._resume)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Condition(Event):
    """Base for composite events over a set of sub-events.

    Triggers when ``evaluate(events, n_done)`` returns True, or fails as
    soon as any sub-event fails.  The condition's value is a dict
    mapping each *triggered* sub-event to its value (insertion order =
    trigger order).
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.add_callback(self._check)

    @staticmethod
    def evaluate(events: list[Event], done: int) -> bool:  # pragma: no cover
        """Return True when the condition is satisfied (subclass hook)."""
        raise NotImplementedError

    def _collect_values(self) -> dict[Event, Any]:
        # Only events that have actually *occurred* (been processed)
        # belong in the result; a Timeout is "triggered" from birth but
        # has not happened until the calendar reaches it.
        return {
            e: e._value
            for e in self._events
            if e.callbacks is None and e.triggered and e._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._done += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self.evaluate(self._events, self._done):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition that triggers once *all* sub-events have triggered."""

    @staticmethod
    def evaluate(events: list[Event], done: int) -> bool:
        return done == len(events)


class AnyOf(Condition):
    """Condition that triggers once *any* sub-event has triggered."""

    @staticmethod
    def evaluate(events: list[Event], done: int) -> bool:
        return done >= 1
