"""Exception types used by the discrete-event kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself.

    Application-level exceptions raised inside a process generator are
    *not* wrapped in this type; they propagate through the process
    event so callers see the original exception.
    """


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception that ends :meth:`Environment.run`.

    Raised when the ``until`` event of a ``run`` call has been
    processed.  Not a :class:`SimulationError` because it is never
    visible to user code.
    """

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` is
    whatever object the interrupter supplied (e.g. a reason string).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]
