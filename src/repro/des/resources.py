"""Blocking containers and resources for the discrete-event kernel.

:class:`Store` is the workhorse here: the virtual-machine message
queues (:mod:`repro.vm`) are Stores, with ``probe``-style inspection of
:attr:`Store.items` for the non-blocking arrival check in the
speculative protocol (Fig. 3 of the paper).
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.des.errors import SimulationError
from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment


class StorePut(Event):
    """Event returned by :meth:`Store.put`; triggers when the item is stored."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; triggers with the retrieved item."""

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw this get request if it has not yet been satisfied."""
        if not self.triggered:
            self._cancelled = True


class Store:
    """FIFO container with blocking ``get`` and (optionally) bounded ``put``.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of stored items; ``inf`` (default) = unbounded.

    Notes
    -----
    * ``get(filter=...)`` retrieves the first item satisfying the
      predicate (a *filter store*), used to receive a message from a
      specific sender.
    * :attr:`items` may be inspected (but not mutated) for non-blocking
      "has a message arrived?" probes.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        """Request to add ``item``; returns an event (immediate if space)."""
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Request to remove an item; returns an event carrying the item.

        With ``filter``, the first queued item satisfying the predicate
        is returned (order among matching items preserved).
        """
        return StoreGet(self, filter)

    def peek(self, filter: Optional[Callable[[Any], bool]] = None) -> Optional[Any]:
        """Return (without removing) the first matching item, or None."""
        if filter is None:
            return self.items[0] if self.items else None
        for item in self.items:
            if filter(item):
                return item
        return None

    def count(self, filter: Optional[Callable[[Any], bool]] = None) -> int:
        """Number of stored items (matching ``filter`` if given)."""
        if filter is None:
            return len(self.items)
        return sum(1 for item in self.items if filter(item))

    # -- internal ---------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if getattr(event, "_cancelled", False):
            return True  # drop silently
        if event.filter is None:
            if self.items:
                event.succeed(self.items.popleft())
                return True
            return False
        for i, item in enumerate(self.items):
            if event.filter(item):
                del self.items[i]
                event.succeed(item)
                return True
        return False

    def _trigger(self) -> None:
        """Match queued puts and gets until no further progress is possible."""
        progress = True
        while progress:
            progress = False
            while self._put_queue:
                if self._do_put(self._put_queue[0]):
                    self._put_queue.popleft()
                    progress = True
                else:
                    break
            # A filter get deeper in the queue may match even if the
            # head does not, so scan the whole get queue.
            remaining: deque[StoreGet] = deque()
            while self._get_queue:
                event = self._get_queue.popleft()
                if event.triggered or getattr(event, "_cancelled", False):
                    progress = True
                    continue
                if self._do_get(event):
                    progress = True
                else:
                    remaining.append(event)
            self._get_queue = remaining

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"<Store items={len(self.items)} capacity={self.capacity}>"


class PriorityStore(Store):
    """Store retrieving items smallest-first (heap order).

    Items must be comparable, or wrapped with an explicit ``(priority,
    payload)`` tuple.  Insertion order breaks priority ties.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: list[tuple[Any, int, Any]] = []
        self._seq = count()

    def _do_put(self, event: StorePut) -> bool:
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (event.item, next(self._seq), event.item))
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if getattr(event, "_cancelled", False):
            return True
        if event.filter is not None:
            raise SimulationError("PriorityStore does not support filtered gets")
        if self._heap:
            _, _, item = heapq.heappop(self._heap)
            event.succeed(item)
            return True
        return False

    def peek(self, filter=None):  # noqa: D102 - see Store.peek
        if filter is not None:
            raise SimulationError("PriorityStore does not support filtered peeks")
        return self._heap[0][2] if self._heap else None

    def count(self, filter=None):  # noqa: D102 - see Store.count
        if filter is not None:
            raise SimulationError("PriorityStore does not support filtered counts")
        return len(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`; triggers on acquisition."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()


class Resource:
    """Counted resource with FIFO acquisition (e.g. a shared bus).

    Usage::

        req = bus.request()
        yield req
        ... hold the resource ...
        bus.release(req)
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list[ResourceRequest] = []
        self._queue: deque[ResourceRequest] = deque()

    def request(self) -> ResourceRequest:
        """Queue for one unit of the resource."""
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        """Return the unit acquired by ``request``."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that does not hold the resource")
        self._trigger()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Requests waiting for a unit."""
        return len(self._queue)

    def _trigger(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            request = self._queue.popleft()
            self.users.append(request)
            request.succeed()

    def __repr__(self) -> str:
        return f"<Resource in_use={self.in_use}/{self.capacity} queued={self.queued}>"
