"""Discrete-event simulation kernel.

A small, deterministic, simpy-flavoured event engine.  Simulated
entities are ordinary Python generator functions ("processes") that
``yield`` :class:`~repro.des.events.Event` objects to wait on; the
:class:`~repro.des.environment.Environment` owns the virtual clock and
the event calendar.

The kernel is intentionally minimal — just what the virtual-machine
substrate (:mod:`repro.vm`) needs to express the speculative protocol
of the paper as straight-line per-processor code:

* :class:`Environment` — clock + event calendar, ``run``/``step``.
* :class:`Event` — one-shot occurrence carrying a value or an error.
* :class:`Timeout` — event that fires after a virtual delay.
* :class:`Process` — generator wrapper; itself an event that fires when
  the generator returns.
* :class:`AnyOf` / :class:`AllOf` — condition events.
* :class:`Store` — unbounded FIFO with blocking ``get`` and
  non-blocking inspection (the message-queue primitive).

Determinism: simultaneous events are ordered by (time, priority,
sequence number); no wall-clock or unseeded randomness is consulted
anywhere in the kernel.
"""

from repro.des.environment import Environment
from repro.des.errors import Interrupt, SimulationError
from repro.des.events import AllOf, AnyOf, Event, Process, Timeout
from repro.des.resources import PriorityStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
