"""Protocol trace events: the dynamic counterpart of the static model.

While :mod:`repro.trace.phases` records *how long* each protocol phase
took, this module records *what happened in what order*: every send,
receive, speculation, verification and correction as a timestamped,
per-rank-sequenced :class:`TraceEvent`.  The resulting
:class:`EventLog` is exactly the input the specflow trace-replay
analysis (:mod:`repro.analysis.replay`) consumes to confirm or refute
static happens-before findings against a real execution.

Event logs are produced by two backends:

* the simulator — attach ``EventLog()`` to ``Cluster(event_log=...)``
  (or set ``cluster.event_log``) and every
  :class:`~repro.vm.processor.VirtualProcessor` send/receive is
  recorded; the :class:`~repro.core.driver.SpeculativeDriver` adds
  speculate/verify/correct events;
* the multiprocessing backend — ``MPRunner(..., record_events=True)``
  makes each worker log its protocol steps, merged by the parent into
  one :class:`EventLog` (``MPRunResult.event_log()``).

Logs round-trip through JSON-lines files (``save``/``load``) so a run
recorded once can be replayed by ``repro analyze --trace`` forever.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Hashable, Iterable, Iterator, Optional, Tuple

#: Canonical event kinds (the alphabet of the protocol state machine).
EVENT_KINDS = (
    "send",       # message handed to the transport       (peer = dst)
    "recv",       # message consumed by the application   (peer = src)
    "speculate",  # missing input predicted               (peer = src)
    "verify",     # speculated input checked vs actual    (peer = src)
    "correct",    # rejected speculation repaired         (peer = src)
    "compute",    # one iteration's compute step entered  (peer = None)
    "window",     # window policy moved the rank's FW     (peer = new FW)
    "fault",      # injected fault perturbed an arrival   (peer = src)
    "retransmit", # engine requested a retransmission     (peer = src)
    "degraded",   # degraded-window mode flipped          (peer = active)
)


def split_tag(tag: Hashable) -> Tuple[Optional[str], Optional[int]]:
    """Decompose a protocol tag into ``(family, iteration)``.

    The protocol convention is ``(family, iteration)`` tuples; nested
    collective tags like ``("gather", ("reduce", "x"))`` keep the outer
    family and drop the non-integer remainder.  Anything else maps to
    ``(str(tag) or None, None)``.
    """
    if tag is None:
        return None, None
    if isinstance(tag, tuple) and len(tag) == 2:
        family = tag[0] if isinstance(tag[0], str) else str(tag[0])
        iteration = tag[1] if isinstance(tag[1], int) else None
        return family, iteration
    if isinstance(tag, str):
        return tag, None
    return str(tag), None


@dataclass(frozen=True, order=True)
class TraceEvent:
    """One protocol step on one rank.

    Attributes
    ----------
    rank:
        The rank the step happened on.
    seq:
        Per-rank program-order sequence number (0, 1, 2 ... within the
        rank).  ``(rank, seq)`` totally orders each rank's events and
        is the backbone of the happens-before graph.
    kind:
        One of :data:`EVENT_KINDS`.
    time:
        Timestamp — virtual seconds for the simulator, wall seconds
        (relative to the run start) for the multiprocessing backend.
        Informational only: replay ordering uses ``seq`` + message
        matching, never the clock.
    peer:
        The other rank involved (dst for sends, src otherwise), or
        None.
    family:
        Message-tag family (``"vars"``, ``"barrier-in"``, ...), or
        None for non-message events.
    iteration:
        Protocol iteration the step belongs to, when known.
    """

    rank: int
    seq: int
    kind: str
    time: float
    peer: Optional[int] = None
    family: Optional[str] = None
    iteration: Optional[int] = None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (one JSONL record)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        return cls(**record)  # type: ignore[arg-type]


class EventLog:
    """Append-only, per-rank-sequenced log of :class:`TraceEvent`.

    The log hands out sequence numbers itself: callers only say *what*
    happened, the log pins down the per-rank order.

    ``max_events`` caps the log for long-running use: once full, new
    events are counted in :attr:`dropped` instead of stored, so the
    log is a faithful *prefix* of the run (per-rank sequence numbers
    stay contiguous) plus an honest count of what it missed.  The
    default (``None``, unbounded) keeps recorded traces byte-identical
    for the replay tooling.
    """

    def __init__(
        self,
        events: Optional[Iterable[TraceEvent]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 0:
            raise ValueError("max_events must be >= 0 (or None for unbounded)")
        self.max_events = max_events
        self.dropped = 0
        self.events: list[TraceEvent] = []
        self._next_seq: dict[int, int] = {}
        if events is not None:
            self.extend(events)

    def _full(self) -> bool:
        return self.max_events is not None and len(self.events) >= self.max_events

    # ------------------------------------------------------------ recording
    def record(
        self,
        kind: str,
        rank: int,
        time: float,
        peer: Optional[int] = None,
        family: Optional[str] = None,
        iteration: Optional[int] = None,
    ) -> TraceEvent:
        """Append one event, assigning the rank's next sequence number.

        When the ``max_events`` cap is reached the event is *built but
        not stored* (the drop is counted and the rank's sequence
        counter is left untouched, keeping the stored log a contiguous
        per-rank prefix).
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace-event kind {kind!r}")
        seq = self._next_seq.get(rank, 0)
        event = TraceEvent(
            rank=rank, seq=seq, kind=kind, time=float(time),
            peer=peer, family=family, iteration=iteration,
        )
        if self._full():
            self.dropped += 1
            return event
        self._next_seq[rank] = seq + 1
        self.events.append(event)
        return event

    def record_message(
        self, kind: str, rank: int, time: float, peer: int, tag: Hashable,
    ) -> TraceEvent:
        """Record a send/recv, splitting ``tag`` into family + iteration."""
        family, iteration = split_tag(tag)
        return self.record(
            kind, rank, time, peer=peer, family=family, iteration=iteration
        )

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Merge pre-sequenced events (e.g. from a worker process).

        Respects the ``max_events`` cap like :meth:`record`: events
        beyond the cap are counted as dropped, not stored.
        """
        for ev in events:
            if self._full():
                self.dropped += 1
                continue
            self.events.append(ev)
            nxt = self._next_seq.get(ev.rank, 0)
            self._next_seq[ev.rank] = max(nxt, ev.seq + 1)

    # ------------------------------------------------------------- queries
    def ranks(self) -> list[int]:
        """Sorted ranks present in the log."""
        return sorted({ev.rank for ev in self.events})

    def for_rank(self, rank: int) -> list[TraceEvent]:
        """One rank's events in program (seq) order."""
        return sorted(
            (ev for ev in self.events if ev.rank == rank),
            key=lambda ev: ev.seq,
        )

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, (rank, seq) order."""
        return sorted(ev for ev in self.events if ev.kind == kind)

    def summary(self) -> dict[str, object]:
        """Shape of the log: sizes, per-kind counts, drops (JSON-ready)."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return {
            "events": len(self.events),
            "ranks": self.ranks(),
            "kinds": dict(sorted(counts.items())),
            "max_events": self.max_events,
            "dropped": self.dropped,
        }

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(sorted(self.events))

    def __repr__(self) -> str:
        return f"<EventLog events={len(self.events)} ranks={self.ranks()}>"

    # ----------------------------------------------------------- JSONL I/O
    def save(self, path: str | Path) -> None:
        """Write the log as JSON-lines (one event per line)."""
        with open(path, "w", encoding="utf-8") as fh:
            for ev in sorted(self.events):
                fh.write(json.dumps(ev.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "EventLog":
        """Read a JSON-lines log written by :meth:`save`."""
        events = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(TraceEvent.from_dict(json.loads(line)))
        return cls(events)
