"""ASCII Gantt rendering of phase traces.

Reproduces the *timeline* figures of the paper (Fig. 2 and Fig. 4) as
text: one row per processor, time flowing left to right, one character
per time bucket, keyed by phase.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.trace.phases import PhaseTrace

#: Default one-character glyphs per phase.
DEFAULT_GLYPHS: Mapping[str, str] = {
    "compute": "C",
    "comm": "-",
    "spec": "s",
    "check": "k",
    "correct": "X",
    "idle": ".",
}


def render_gantt(
    traces: Sequence[PhaseTrace],
    width: int = 80,
    t_end: Optional[float] = None,
    glyphs: Optional[Mapping[str, str]] = None,
    legend: bool = True,
) -> str:
    """Render processor traces as an ASCII timeline.

    Parameters
    ----------
    traces:
        One :class:`PhaseTrace` per processor (row order preserved).
    width:
        Number of character buckets on the time axis.
    t_end:
        Time mapped to the right edge; defaults to the latest interval
        end over all traces.
    glyphs:
        Override the phase → character mapping.
    legend:
        Append a glyph legend below the chart.

    Returns
    -------
    A multi-line string.  When several phases fall in the same bucket,
    the phase covering the most time in that bucket wins.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not traces:
        return "(no traces)\n"
    chars = dict(DEFAULT_GLYPHS)
    if glyphs:
        chars.update(glyphs)

    if t_end is None:
        ends = [max((i.end for i in t.intervals), default=0.0) for t in traces]
        t_end = max(ends) if ends else 0.0
    if t_end <= 0:
        t_end = 1.0
    dt = t_end / width

    lines = []
    for trace in traces:
        # Accumulate per-bucket phase coverage.
        coverage: list[dict[str, float]] = [dict() for _ in range(width)]
        for iv in trace.intervals:
            if iv.start >= t_end:
                continue
            b0 = int(iv.start / dt)
            b1 = min(int((iv.end - 1e-12) / dt), width - 1) if iv.end > iv.start else b0
            for b in range(b0, b1 + 1):
                lo = max(iv.start, b * dt)
                hi = min(iv.end, (b + 1) * dt)
                if hi > lo:
                    coverage[b][iv.phase] = coverage[b].get(iv.phase, 0.0) + (hi - lo)
        row = []
        for bucket in coverage:
            if not bucket:
                row.append(" ")
            else:
                phase = max(bucket.items(), key=lambda kv: kv[1])[0]
                row.append(chars.get(phase, "?"))
        lines.append(f"P{trace.rank:<3d}|{''.join(row)}|")

    out = "\n".join(lines)
    axis = f"    t=0{' ' * max(0, width - len(f'{t_end:.3g}') - 4)}t={t_end:.3g}"
    out += "\n" + axis
    if legend:
        used = {iv.phase for t in traces for iv in t.intervals}
        entries = [f"{chars.get(p, '?')}={p}" for p in sorted(used)]
        out += "\n    legend: " + "  ".join(entries)
    return out + "\n"
