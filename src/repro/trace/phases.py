"""Phase-interval traces and per-phase time aggregation.

The paper's Table 2 reports, per iteration, the time spent in each
phase of the speculative protocol (computation / communication /
speculation / check).  :class:`PhaseTrace` records raw intervals from
a processor's execution; :class:`PhaseBreakdown` aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

#: Canonical phase names used throughout the package.
PHASES = (
    "compute",  # evaluating one's own variables (f_comp work)
    "comm",     # blocked waiting for a message (or sending synchronously)
    "spec",     # evaluating the speculation function (f_spec work)
    "check",    # comparing speculated vs actual values (f_check work)
    "correct",  # correction / recomputation after a rejected speculation
    "idle",     # barrier / other idle time
)


@dataclass(frozen=True)
class Interval:
    """One contiguous span of a single phase on one processor."""

    phase: str
    start: float
    end: float
    iteration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        """Length of the interval in virtual seconds."""
        return self.end - self.start


class PhaseTrace:
    """Append-only log of :class:`Interval` records for one processor.

    Parameters
    ----------
    rank:
        The processor rank this trace belongs to.
    """

    def __init__(self, rank: int = 0) -> None:
        self.rank = rank
        self.intervals: list[Interval] = []

    def record(self, phase: str, start: float, end: float, iteration: Optional[int] = None) -> None:
        """Append one interval (zero-length intervals are dropped)."""
        if end < start:
            raise ValueError(f"negative-duration interval: {phase} [{start}, {end}]")
        if end == start:
            return
        # Phase intervals ARE the experiment's result payload: a run
        # records O(iterations) of them and ends; no cap wanted.
        self.intervals.append(  # specbound: disable=SPB406
            Interval(phase, start, end, iteration)
        )

    def total(self, phase: str) -> float:
        """Total time spent in ``phase``."""
        return sum(i.duration for i in self.intervals if i.phase == phase)

    def span(self) -> float:
        """Wall span from first interval start to last interval end."""
        if not self.intervals:
            return 0.0
        return max(i.end for i in self.intervals) - min(i.start for i in self.intervals)

    def breakdown(self) -> "PhaseBreakdown":
        """Aggregate into a :class:`PhaseBreakdown`."""
        totals = {phase: 0.0 for phase in PHASES}
        for i in self.intervals:
            totals[i.phase] = totals.get(i.phase, 0.0) + i.duration
        return PhaseBreakdown(totals=totals, span=self.span())

    def iterations(self) -> list[int]:
        """Sorted distinct iteration tags present in the trace."""
        return sorted({i.iteration for i in self.intervals if i.iteration is not None})

    def for_iteration(self, iteration: int) -> "PhaseTrace":
        """A sub-trace containing only intervals tagged ``iteration``."""
        sub = PhaseTrace(self.rank)
        sub.intervals = [i for i in self.intervals if i.iteration == iteration]
        return sub

    def __len__(self) -> int:
        return len(self.intervals)

    def __repr__(self) -> str:
        return f"<PhaseTrace rank={self.rank} intervals={len(self.intervals)}>"


@dataclass
class PhaseBreakdown:
    """Aggregated per-phase totals (the Table-2 row shape).

    Attributes
    ----------
    totals:
        Mapping phase name → total seconds.
    span:
        Wall span covered by the underlying trace.
    """

    totals: dict[str, float] = field(default_factory=dict)
    span: float = 0.0

    def __getitem__(self, phase: str) -> float:
        return self.totals.get(phase, 0.0)

    @property
    def busy(self) -> float:
        """Seconds in productive phases (everything except comm/idle)."""
        return sum(v for k, v in self.totals.items() if k not in ("comm", "idle"))

    @property
    def total(self) -> float:
        """Sum over all recorded phases."""
        return sum(self.totals.values())

    def scaled(self, factor: float) -> "PhaseBreakdown":
        """A copy with every total (and span) multiplied by ``factor``.

        Used to convert a whole-run breakdown into a per-iteration one.
        """
        return PhaseBreakdown(
            totals={k: v * factor for k, v in self.totals.items()},
            span=self.span * factor,
        )

    def as_row(self, phases: Sequence[str] = ("compute", "comm", "spec", "check")) -> list[float]:
        """Totals in Table-2 column order plus the grand total."""
        row = [self[p] for p in phases]
        row.append(self.total)
        return row


def merge_breakdowns(breakdowns: Iterable[PhaseBreakdown], how: str = "max") -> PhaseBreakdown:
    """Combine per-processor breakdowns into a cluster-level view.

    Parameters
    ----------
    breakdowns:
        One breakdown per processor.
    how:
        ``"max"`` — per-phase maximum over processors (the critical
        path view used for Table 2, where the slowest processor's phase
        time is what shows up per iteration); ``"sum"`` — total
        resource consumption; ``"mean"`` — average processor.
    """
    items = list(breakdowns)
    if not items:
        return PhaseBreakdown()
    keys = set()
    for b in items:
        keys.update(b.totals)
    if how == "max":
        totals = {k: max(b[k] for b in items) for k in keys}
        span = max(b.span for b in items)
    elif how == "sum":
        totals = {k: sum(b[k] for b in items) for k in keys}
        span = max(b.span for b in items)
    elif how == "mean":
        totals = {k: sum(b[k] for b in items) / len(items) for k in keys}
        span = sum(b.span for b in items) / len(items)
    else:
        raise ValueError(f"unknown merge mode: {how!r}")
    return PhaseBreakdown(totals=totals, span=span)
