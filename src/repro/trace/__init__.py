"""Execution tracing: per-phase intervals, aggregation, ASCII Gantt.

Every virtual processor records what it is doing — computing,
speculating, checking, correcting, communicating (blocked on a
message), or idle — as a sequence of timestamped intervals.  The
aggregators here turn those traces into the paper's artifacts:
Table 2's per-phase time breakdown and the Fig. 2 / Fig. 4 timelines.
"""

from repro.trace.events import EVENT_KINDS, EventLog, TraceEvent, split_tag
from repro.trace.gantt import render_gantt
from repro.trace.phases import (
    PHASES,
    Interval,
    PhaseBreakdown,
    PhaseTrace,
    merge_breakdowns,
)

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "Interval",
    "PHASES",
    "PhaseBreakdown",
    "PhaseTrace",
    "TraceEvent",
    "merge_breakdowns",
    "render_gantt",
    "split_tag",
]
