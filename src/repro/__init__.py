"""repro — speculative computation for masking communication delays.

A production-quality reproduction of *"Speculative Computation:
Overcoming Communication Delays in Parallel Algorithms"* (Vasudha
Govindan and Mark A. Franklin, WUCS-94-3, Washington University in
St. Louis, 1994).

Quick start::

    from repro import NBodyProgram, run_program, uniform_cube, wustl_1994

    platform = wustl_1994(p=8)
    system = uniform_cube(500, seed=0, softening=0.1)
    program = NBodyProgram(system, platform.capacities(),
                           iterations=10, dt=0.01, threshold=0.01)
    blocking    = run_program(program, platform.cluster(), fw=0)
    speculative = run_program(program, platform.cluster(), fw=1)
    print(blocking.makespan, "->", speculative.makespan)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the speculation framework (drivers, speculators,
  checkers, results).
* :mod:`repro.apps` — N-body, heat equation, Jacobi, Kuramoto.
* :mod:`repro.vm` / :mod:`repro.netsim` / :mod:`repro.des` — the
  simulated cluster substrate.
* :mod:`repro.perfmodel` — the Section-4 analytic model.
* :mod:`repro.parallel` — real multiprocessing backend.
* :mod:`repro.harness` — every table/figure of the paper as a runnable
  experiment.
"""

from repro.api import BACKENDS, RunConfig, RunReport, run
from repro.apps import (
    CoupledMapLattice,
    HeatEquation1D,
    HeatEquation2D,
    JacobiSolver,
    KuramotoProgram,
    NBodyProgram,
    WaveEquation1D,
)
from repro.core import (
    DampedLinear,
    LinearExtrapolation,
    PolynomialExtrapolation,
    RunResult,
    SpecStats,
    SpeculativeDriver,
    Speculator,
    SyncIterativeProgram,
    WeightedHistory,
    ZeroOrderHold,
    run_program,
    speedup,
    speedup_max,
)
from repro.nbody import ParticleSystem, cold_disk, plummer_sphere, two_clusters, uniform_cube
from repro.parallel import MPRunner
from repro.perfmodel import ModelParams, PerformanceModel, section4_params
from repro.platforms import PlatformConfig, modern_cluster, two_processor_demo, wustl_1994
from repro.vm import Cluster, ProcessorSpec, linear_gradient_specs, uniform_specs

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "Cluster",
    "CoupledMapLattice",
    "DampedLinear",
    "HeatEquation1D",
    "HeatEquation2D",
    "JacobiSolver",
    "KuramotoProgram",
    "LinearExtrapolation",
    "ModelParams",
    "MPRunner",
    "NBodyProgram",
    "WaveEquation1D",
    "ParticleSystem",
    "PerformanceModel",
    "PlatformConfig",
    "PolynomialExtrapolation",
    "ProcessorSpec",
    "RunConfig",
    "RunReport",
    "RunResult",
    "SpecStats",
    "SpeculativeDriver",
    "Speculator",
    "SyncIterativeProgram",
    "WeightedHistory",
    "ZeroOrderHold",
    "cold_disk",
    "linear_gradient_specs",
    "modern_cluster",
    "plummer_sphere",
    "run",
    "run_program",
    "section4_params",
    "speedup",
    "speedup_max",
    "two_clusters",
    "two_processor_demo",
    "uniform_cube",
    "uniform_specs",
    "wustl_1994",
    "__version__",
]
