"""Calibrated platform presets.

:data:`WUSTL_1994` reproduces the paper's testbed: 16 SUN/Sparc
workstations (fastest 10× the slowest, linear gradient — the
Section-4 characterisation) on a shared Ethernet under PVM.

Calibration targets (Table 2, 16 processors, 1000 particles, per
iteration): computation ≈ 5.83 s, communication ≈ 4.73 s.  Working
backwards through the cost model:

* computation: each rank takes ``N·(70·N + 12) / ΣM`` seconds with
  ideal balancing, so ``M_1 = N·(70·N+12) / (5.83 · 8.8)`` where 8.8 =
  ΣM/M₁ for the 10:1 linear gradient.  (The resulting ~1.4 M "model
  ops/s" for a 120 MIPS machine reflects early-90s interpreted-PVM
  efficiency; only ratios matter.)
* communication: per FW = 0 iteration, all p ranks broadcast their
  blocks — ``(p−1)·(48·N + 64·p)`` bytes — through the shared medium.
  An effective bus bandwidth of ~175 kB/s plus a 2 ms per-frame
  overhead lands the p = 16 blocked time near 4.73 s.  (Raw 10 Mb/s
  Ethernet was never achievable through PVM's UDP stack; published
  PVM-over-Ethernet numbers are a few hundred kB/s.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.des import Environment
from repro.netsim import (
    BackgroundTraffic,
    BurstyTraffic,
    BusNetwork,
    ConstantLatency,
    Network,
    SharedBus,
    StochasticLatency,
    TransientSpikes,
)
from repro.netsim.latency import LatencyModel, Spike
from repro.vm import BackgroundLoad, Cluster, ProcessorSpec, RandomWalkLoad, linear_gradient_specs

#: Paper workload constants used for calibration.
N_REF = 1000
TABLE2_COMP_SECONDS = 5.83
TABLE2_COMM_SECONDS = 4.73
#: ΣM/M1 for 16 processors on a linear 10:1 gradient.
_CAP_SUM_RATIO_16 = sum(1.0 - i * 0.9 / 15.0 for i in range(16))
#: Model operations per particle per iteration (70 per pair + update).
_OPS_PER_PARTICLE = 70.0 * N_REF + 12.0

#: Calibrated capacity of the fastest workstation (model ops / second).
WUSTL_M1 = N_REF * _OPS_PER_PARTICLE / (TABLE2_COMP_SECONDS * _CAP_SUM_RATIO_16)
#: Effective shared-medium bandwidth (bytes / second) under PVM.
WUSTL_BUS_BANDWIDTH = 175e3
#: Per-frame software + MAC overhead (seconds).
WUSTL_FRAME_OVERHEAD = 2e-3
#: Endpoint (protocol stack) latency per message, overlappable.
WUSTL_ENDPOINT_LATENCY = 5e-3


@dataclass
class PlatformConfig:
    """A reproducible cluster recipe (specs + network + loads).

    Calling :meth:`cluster` builds a *fresh* simulation environment
    each time, so successive runs are independent and deterministic.
    """

    name: str
    specs: list[ProcessorSpec]
    network_factory: Callable[[Environment], Network]
    loads: Optional[list[Optional[BackgroundLoad]]] = None
    description: str = ""

    @property
    def nprocs(self) -> int:
        """Number of processors in the platform."""
        return len(self.specs)

    def capacities(self) -> list[float]:
        """Per-processor capacities M_i."""
        return [s.capacity for s in self.specs]

    def cluster(self) -> Cluster:
        """Build a fresh :class:`~repro.vm.Cluster` for one run."""
        return Cluster(
            self.specs, network_factory=self.network_factory, loads=self.loads
        )


def wustl_1994(
    p: int = 16,
    jitter_sigma: float = 0.0,
    background_frames_per_s: float = 0.0,
    bursty_traffic: bool = False,
    burst_rate: float = 105.0,
    mean_on: float = 12.0,
    mean_off: float = 35.0,
    background_load: bool = False,
    spikes: Sequence[Spike] = (),
    seed: int = 0,
) -> PlatformConfig:
    """The calibrated paper testbed, using the fastest ``p`` machines.

    Parameters
    ----------
    p:
        Number of workstations (1–16), fastest first, as in the paper's
        "p-processor execution".
    jitter_sigma:
        Log-normal sigma on per-message endpoint latency (0 = clean,
        deterministic network).
    background_frames_per_s:
        Steady Poisson rate of 1500-byte frames from other Ethernet
        hosts.
    bursty_traffic:
        Additionally superimpose Markov-modulated bursts (another
        host's bulk transfers) — the "excessive but transient delays"
        of Section 3.2 that motivate forward windows > 1.
    burst_rate / mean_on / mean_off:
        Burst shape (frames/s during a burst; mean burst and quiet
        durations in seconds).
    background_load:
        Attach a drifting compute slowdown to each workstation
        (timeshared users).
    spikes:
        Transient extra delays (the Fig. 4 scenario).
    seed:
        Seed for all stochastic components.
    """
    if not 1 <= p <= 16:
        raise ValueError("the WUSTL testbed has 1..16 workstations")
    specs = linear_gradient_specs(p=16, fastest=WUSTL_M1, ratio=10.0, name_prefix="sparc")[:p]

    def network_factory(env: Environment) -> Network:
        bus = SharedBus(
            env,
            bandwidth=WUSTL_BUS_BANDWIDTH,
            frame_overhead=WUSTL_FRAME_OVERHEAD,
        )
        if background_frames_per_s > 0:
            BackgroundTraffic(
                rate=background_frames_per_s, frame_bytes=1500, seed=seed + 1
            ).attach(bus)
        if bursty_traffic:
            BurstyTraffic(
                base_rate=0.0,
                burst_rate=burst_rate,
                mean_on=mean_on,
                mean_off=mean_off,
                frame_bytes=1500,
                seed=seed + 3,
            ).attach(bus)
        latency: LatencyModel = ConstantLatency(WUSTL_ENDPOINT_LATENCY)
        if spikes:
            latency = TransientSpikes(latency, spikes=tuple(spikes))
        if jitter_sigma > 0:
            latency = StochasticLatency(latency, sigma=jitter_sigma, seed=seed + 2)
        return BusNetwork(env, bus, latency=latency)

    loads = None
    if background_load:
        loads = [
            RandomWalkLoad(mean=0.05, step=0.03, interval=5.0, seed=seed + 10 + r)
            for r in range(p)
        ]
    return PlatformConfig(
        name=f"wustl-1994-p{p}",
        specs=specs,
        network_factory=network_factory,
        loads=loads,
        description=(
            "16 SUN/Sparc workstations (linear 10:1 capacity gradient) on a "
            "shared Ethernet under PVM; calibrated to Table 2 of the paper"
        ),
    )


def modern_cluster(
    p: int = 16,
    capacity: float = 2e9,
    link_bandwidth: float = 125e6,
    base_latency: float = 50e-6,
    jitter_sigma: float = 0.0,
    seed: int = 0,
) -> PlatformConfig:
    """A contemporary homogeneous cluster: switched gigabit, fast CPUs.

    Useful as a contrast to :func:`wustl_1994`: thirty years of
    hardware moved both compute and network, but their *ratio* — and
    therefore the value of latency masking — depends entirely on the
    workload.  Per-link full-duplex bandwidth defaults to 1 Gb/s
    (125 MB/s) with a 50 µs base latency.

    Parameters
    ----------
    p:
        Number of identical nodes.
    capacity:
        Node capacity in model ops/s.
    link_bandwidth:
        Per-endpoint bandwidth in bytes/s (switched; no shared medium).
    base_latency:
        Per-message protocol latency in seconds.
    jitter_sigma:
        Optional log-normal jitter on the base latency.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if capacity <= 0 or link_bandwidth <= 0 or base_latency < 0:
        raise ValueError("capacity/bandwidth must be positive; latency >= 0")
    from repro.netsim import SwitchedNetwork
    from repro.vm import uniform_specs

    specs = uniform_specs(p, capacity=capacity, name_prefix="node")

    def network_factory(env: Environment) -> Network:
        latency: LatencyModel = ConstantLatency(base_latency)
        if jitter_sigma > 0:
            latency = StochasticLatency(latency, sigma=jitter_sigma, seed=seed + 1)
        return SwitchedNetwork(env, nprocs=p, bandwidth=link_bandwidth, latency=latency)

    return PlatformConfig(
        name=f"modern-cluster-p{p}",
        specs=specs,
        network_factory=network_factory,
        description="homogeneous switched-gigabit cluster (contrast platform)",
    )


def two_processor_demo(
    compute_seconds: float = 1.0,
    comm_seconds: float = 1.5,
    ops_per_iteration: float = 1e6,
    spikes: Sequence[Spike] = (),
) -> PlatformConfig:
    """The Fig. 2 / Fig. 4 illustration: two equal processors, one slow
    channel with a fixed message delay.

    ``ops_per_iteration`` is the compute cost the paired program should
    use so one iteration takes ``compute_seconds``.
    """
    if compute_seconds <= 0 or comm_seconds <= 0:
        raise ValueError("times must be positive")
    capacity = ops_per_iteration / compute_seconds
    specs = [ProcessorSpec("P1", capacity), ProcessorSpec("P2", capacity)]

    def network_factory(env: Environment) -> Network:
        from repro.netsim import DelayNetwork

        latency: LatencyModel = ConstantLatency(comm_seconds)
        if spikes:
            latency = TransientSpikes(latency, spikes=tuple(spikes))
        return DelayNetwork(env, latency)

    return PlatformConfig(
        name="two-processor-demo",
        specs=specs,
        network_factory=network_factory,
        description="Fig. 2/4 illustration: 2 processors, slow channel",
    )
