"""Transport abstraction used by the virtual machine.

A :class:`Network` turns ``transmit(src, dst, nbytes)`` into an event
that fires when the last byte arrives at the destination.  Two
implementations:

* :class:`DelayNetwork` — pure latency, unlimited parallelism (every
  message travels independently).  Matches the performance model's
  assumption of a constant, contention-free t_comm.
* :class:`BusNetwork` — latency plus a :class:`~repro.netsim.bus.SharedBus`
  that serializes transfers, so all-to-all exchanges contend exactly as
  on the paper's Ethernet.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, Optional

from repro.des import Environment, Event
from repro.netsim.bus import SharedBus
from repro.netsim.latency import ConstantLatency, LatencyModel


class Network(ABC):
    """Abstract message transport over a simulated interconnect."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        #: Count of messages ever transmitted.
        self.messages_sent = 0
        #: Total payload bytes ever transmitted.
        self.bytes_sent = 0

    @abstractmethod
    def transmit(self, src: int, dst: int, nbytes: int) -> Event:
        """Send ``nbytes`` from ``src`` to ``dst``; event fires on delivery."""

    def _account(self, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes


class DelayNetwork(Network):
    """Contention-free transport: delivery after ``latency.delay(...)``.

    Messages on the same path never queue behind each other; ordering
    between two messages on one path is still preserved (FIFO channel
    semantics) by never letting a later message overtake an earlier
    one — delivery time is clamped to be monotone per (src, dst) pair,
    as TCP/PVM streams guarantee.
    """

    def __init__(self, env: Environment, latency: Optional[LatencyModel] = None) -> None:
        super().__init__(env)
        self.latency = latency if latency is not None else ConstantLatency(0.0)
        self._last_delivery: dict[tuple[int, int], float] = {}

    def transmit(self, src: int, dst: int, nbytes: int) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self._account(nbytes)
        delay = self.latency.delay(src, dst, nbytes, self.env.now)
        arrival = self.env.now + delay
        key = (src, dst)
        # FIFO per channel: a message never arrives before its
        # predecessor on the same channel.
        arrival = max(arrival, self._last_delivery.get(key, 0.0))
        self._last_delivery[key] = arrival
        return self.env.timeout(arrival - self.env.now, value=(src, dst, nbytes))


class SwitchedNetwork(Network):
    """Full-duplex switched transport: contention only per endpoint.

    Models a (then-futuristic, now standard) switched LAN: each
    processor has a dedicated full-duplex link to the switch, so
    transfers contend only for the sender's egress and the receiver's
    ingress — never for a shared medium.  Contrast with
    :class:`BusNetwork` to quantify how much of the paper's large-p
    degradation is pure Ethernet contention.
    """

    def __init__(
        self,
        env: Environment,
        nprocs: int,
        bandwidth: float,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        super().__init__(env)
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.nprocs = nprocs
        self.bandwidth = bandwidth
        self.latency = latency if latency is not None else ConstantLatency(0.0)
        from repro.des import Resource

        self._egress = [Resource(env, capacity=1) for _ in range(nprocs)]
        self._ingress = [Resource(env, capacity=1) for _ in range(nprocs)]

    def transmit(self, src: int, dst: int, nbytes: int) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if not (0 <= src < self.nprocs and 0 <= dst < self.nprocs):
            raise ValueError("invalid endpoint rank")
        self._account(nbytes)
        return self.env.process(
            self._deliver(src, dst, nbytes), name=f"sw-xmit-{src}-{dst}"
        )

    def _deliver(self, src: int, dst: int, nbytes: int) -> Generator:
        endpoint = self.latency.delay(src, dst, nbytes, self.env.now)
        if endpoint > 0:
            yield self.env.timeout(endpoint)
        wire = nbytes / self.bandwidth
        # Hold sender egress, then receiver ingress (store-and-forward).
        egress = self._egress[src].request()
        yield egress
        try:
            yield self.env.timeout(wire)
        finally:
            self._egress[src].release(egress)
        ingress = self._ingress[dst].request()
        yield ingress
        try:
            yield self.env.timeout(wire)
        finally:
            self._ingress[dst].release(ingress)
        return (src, dst, nbytes)


class BusNetwork(Network):
    """Shared-bus transport: endpoint latency + serialized wire time.

    A message first pays an endpoint ``latency`` (protocol-stack
    processing, which *can* overlap across processors), then occupies
    the shared bus for its wire time (which cannot).
    """

    def __init__(
        self,
        env: Environment,
        bus: SharedBus,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        super().__init__(env)
        self.bus = bus
        self.latency = latency if latency is not None else ConstantLatency(0.0)

    def transmit(self, src: int, dst: int, nbytes: int) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self._account(nbytes)
        return self.env.process(
            self._deliver(src, dst, nbytes), name=f"xmit-{src}-{dst}"
        )

    def _deliver(self, src: int, dst: int, nbytes: int) -> Generator:
        endpoint = self.latency.delay(src, dst, nbytes, self.env.now)
        if endpoint > 0:
            yield self.env.timeout(endpoint)
        yield self.bus.transfer(nbytes)
        return (src, dst, nbytes)
