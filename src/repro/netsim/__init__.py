"""Network models for the simulated cluster.

This package substitutes the paper's physical substrate — a shared
10 Mb/s Ethernet connecting up to 16 SUN/Sparc workstations — with
composable delay models:

* :mod:`repro.netsim.latency` — per-message latency models: constant,
  size-linear, processor-count-scaled, stochastic (log-normal jitter),
  transient spikes (the Fig. 4 scenario), and composition.
* :mod:`repro.netsim.bus` — a shared-medium bus with FIFO contention
  and optional background traffic, reproducing the contention-driven
  growth of t_comm with p that the paper observes beyond 8 processors.
* :mod:`repro.netsim.network` — the transport interface used by the
  virtual machine: ``transmit(src, dst, nbytes)`` returning a delivery
  event.
"""

from repro.netsim.bus import BackgroundTraffic, BurstyTraffic, SharedBus
from repro.netsim.latency import (
    CompositeLatency,
    ConstantLatency,
    LatencyModel,
    LinearLatency,
    PerProcessorScaledLatency,
    StochasticLatency,
    TransientSpikes,
    UniformLatency,
)
from repro.netsim.network import BusNetwork, DelayNetwork, Network, SwitchedNetwork

__all__ = [
    "BackgroundTraffic",
    "BurstyTraffic",
    "BusNetwork",
    "CompositeLatency",
    "ConstantLatency",
    "DelayNetwork",
    "LatencyModel",
    "LinearLatency",
    "Network",
    "PerProcessorScaledLatency",
    "SharedBus",
    "StochasticLatency",
    "SwitchedNetwork",
    "TransientSpikes",
    "UniformLatency",
]
