"""Shared-medium bus with contention.

Models the paper's shared Ethernet: only one frame is on the wire at a
time, so all-to-all exchanges serialize and the effective per-processor
communication time grows with p.  The paper attributes the performance
roll-off beyond ~8–10 processors to exactly this contention ("network
contention (not accounted for in the model) causes additional
communication delay").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.des import Environment, Event, Resource


class SharedBus:
    """A single shared transmission medium (Ethernet-like).

    Transfers acquire the bus FIFO, hold it for
    ``frame_overhead + nbytes / bandwidth`` seconds, then release.

    Parameters
    ----------
    env:
        Simulation environment.
    bandwidth:
        Bytes per virtual second on the wire.
    frame_overhead:
        Fixed per-transfer bus occupancy (preamble, inter-frame gap,
        MAC arbitration), in seconds.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        frame_overhead: float = 0.0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if frame_overhead < 0:
            raise ValueError("frame_overhead must be >= 0")
        self.env = env
        self.bandwidth = bandwidth
        self.frame_overhead = frame_overhead
        self._medium = Resource(env, capacity=1)
        #: Total bytes ever accepted for transfer (for utilisation stats).
        self.bytes_transferred = 0
        #: Total seconds the medium has been held.
        self.busy_time = 0.0

    def occupancy(self, nbytes: int) -> float:
        """Seconds the medium is held for an ``nbytes`` transfer."""
        return self.frame_overhead + nbytes / self.bandwidth

    def transfer(self, nbytes: int) -> Event:
        """Start a transfer; returns an event firing at completion."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.env.process(self._transfer(nbytes), name="bus-transfer")

    def _transfer(self, nbytes: int) -> Generator:
        request = self._medium.request()
        yield request
        hold = self.occupancy(nbytes)
        start = self.env.now
        try:
            yield self.env.timeout(hold)
        finally:
            self._medium.release(request)
            self.busy_time += self.env.now - start
            self.bytes_transferred += nbytes

    @property
    def queued(self) -> int:
        """Transfers currently waiting for the medium."""
        return self._medium.queued

    def utilisation(self) -> float:
        """Fraction of elapsed virtual time the medium has been busy."""
        if self.env.now == 0:
            return 0.0
        return self.busy_time / self.env.now

    def __repr__(self) -> str:
        return (
            f"<SharedBus bw={self.bandwidth:.3g} B/s "
            f"overhead={self.frame_overhead:.3g}s queued={self.queued}>"
        )


@dataclass
class BackgroundTraffic:
    """Poisson background load injected onto a :class:`SharedBus`.

    Emulates other hosts sharing the department Ethernet: frames of
    ``frame_bytes`` arrive with exponential inter-arrival times of mean
    ``1 / rate`` and occupy the bus like any other transfer.

    Parameters
    ----------
    rate:
        Mean frames per virtual second.
    frame_bytes:
        Size of each background frame.
    seed:
        RNG seed (deterministic inter-arrival sequence).
    """

    rate: float
    frame_bytes: int = 1500
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be >= 0")
        if self.frame_bytes < 0:
            raise ValueError("frame_bytes must be >= 0")

    def attach(self, bus: SharedBus, until: Optional[float] = None) -> None:
        """Start generating traffic on ``bus`` (until time ``until``)."""
        if self.rate == 0:
            return
        bus.env.process(self._generate(bus, until), name="background-traffic")

    def _generate(self, bus: SharedBus, until: Optional[float]) -> Generator:
        rng = np.random.default_rng(self.seed)
        env = bus.env
        while until is None or env.now < until:
            gap = float(rng.exponential(1.0 / self.rate))
            yield env.timeout(gap)
            if until is not None and env.now >= until:
                return
            # Fire-and-forget: the frame occupies the bus; nobody waits
            # on its completion event.
            bus.transfer(self.frame_bytes)


@dataclass
class BurstyTraffic:
    """Markov-modulated background load: quiet baseline + saturating bursts.

    Models the paper's environment of "messages may occasionally
    experience excessive delays due to network traffic": most of the
    time the Ethernet carries light traffic, but during bursts (another
    user's bulk transfer) it nearly saturates for several seconds —
    exactly the transient the forward window is designed to absorb
    (Fig. 4).

    Parameters
    ----------
    base_rate / burst_rate:
        Frames per second outside / inside a burst.
    mean_off / mean_on:
        Mean duration (exponential) of quiet and burst periods.
    frame_bytes:
        Size of each background frame.
    seed:
        RNG seed.
    """

    base_rate: float = 10.0
    burst_rate: float = 100.0
    mean_off: float = 30.0
    mean_on: float = 8.0
    frame_bytes: int = 1500
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.base_rate, self.burst_rate) < 0:
            raise ValueError("rates must be >= 0")
        if min(self.mean_off, self.mean_on) <= 0:
            raise ValueError("mean_off and mean_on must be positive")
        if self.frame_bytes < 0:
            raise ValueError("frame_bytes must be >= 0")

    def attach(self, bus: SharedBus, until: Optional[float] = None) -> None:
        """Start the modulated generator on ``bus``."""
        if self.base_rate == 0 and self.burst_rate == 0:
            return
        bus.env.process(self._generate(bus, until), name="bursty-traffic")

    def _generate(self, bus: SharedBus, until: Optional[float]) -> Generator:
        rng = np.random.default_rng(self.seed)
        env = bus.env
        in_burst = False
        phase_end = env.now + float(rng.exponential(self.mean_off))
        while until is None or env.now < until:
            if env.now >= phase_end:
                in_burst = not in_burst
                mean = self.mean_on if in_burst else self.mean_off
                phase_end = env.now + float(rng.exponential(mean))
            rate = self.burst_rate if in_burst else self.base_rate
            if rate <= 0:
                yield env.timeout(min(1.0, max(phase_end - env.now, 1e-9)))
                continue
            gap = float(rng.exponential(1.0 / rate))
            yield env.timeout(gap)
            if until is not None and env.now >= until:
                return
            bus.transfer(self.frame_bytes)
