"""Per-message latency models.

A :class:`LatencyModel` maps a message (source, destination, size,
current time) to a delay in virtual seconds.  Models are composable so
the calibrated platform can express e.g. *"fixed software overhead +
size/bandwidth + log-normal jitter + a transient spike on the P1→P2
path at t≈0"* as a single object.

All randomness flows through a ``numpy.random.Generator`` owned by the
model, seeded at construction — two models built with the same seed
produce identical delay sequences.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


class LatencyModel(ABC):
    """Maps one message to a transmission delay (virtual seconds)."""

    @abstractmethod
    def delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        """Delay for a message of ``nbytes`` from ``src`` to ``dst`` at ``now``.

        Parameters
        ----------
        src, dst:
            Integer processor ranks.
        nbytes:
            Payload size in bytes.
        now:
            Current virtual time (lets models express transient effects).
        """

    def __add__(self, other: "LatencyModel") -> "CompositeLatency":
        return CompositeLatency([self, other])


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Fixed delay for every message regardless of size or endpoints."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"negative latency: {self.seconds}")

    def delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        return self.seconds


@dataclass(frozen=True)
class LinearLatency(LatencyModel):
    """Affine size model: ``overhead + nbytes / bandwidth``.

    ``overhead`` captures per-message software cost (PVM pack/unpack,
    protocol stack); ``bandwidth`` is in bytes per virtual second.
    """

    overhead: float = 0.0
    bandwidth: float = float("inf")

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise ValueError("negative overhead")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        return self.overhead + nbytes / self.bandwidth


@dataclass(frozen=True)
class PerProcessorScaledLatency(LatencyModel):
    """Scales a base model linearly with the processor count.

    The Section-4 study assumes *t_comm(p) grows linearly with p*; this
    model expresses exactly that: ``delay = base × (1 + slope·(p-1))``.
    """

    base: LatencyModel
    nprocs: int
    slope: float = 1.0

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.slope < 0:
            raise ValueError("slope must be >= 0")

    def delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        factor = 1.0 + self.slope * (self.nprocs - 1)
        return self.base.delay(src, dst, nbytes, now) * factor


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message (seeded)."""

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high
        self._rng = np.random.default_rng(seed)

    def delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        return float(self._rng.uniform(self.low, self.high))

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class StochasticLatency(LatencyModel):
    """Multiplies a base model by log-normal jitter (median 1).

    ``sigma`` is the log-space standard deviation; sigma = 0 reduces to
    the base model exactly.  Models the "significant variations due to
    non-deterministic network traffic" the paper reports.
    """

    def __init__(self, base: LatencyModel, sigma: float = 0.25, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self.base = base
        self.sigma = sigma
        self._rng = np.random.default_rng(seed)

    def delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        d = self.base.delay(src, dst, nbytes, now)
        if self.sigma == 0.0:
            return d
        return d * float(math.exp(self._rng.normal(0.0, self.sigma)))

    def __repr__(self) -> str:
        return f"StochasticLatency({self.base!r}, sigma={self.sigma})"


@dataclass(frozen=True)
class Spike:
    """One transient extra delay on a specific path and time window.

    Any message from ``src`` to ``dst`` *sent* in ``[t_start, t_end)``
    suffers ``extra`` additional seconds of delay.  ``src``/``dst`` of
    ``None`` match any endpoint.
    """

    extra: float
    t_start: float = 0.0
    t_end: float = float("inf")
    src: Optional[int] = None
    dst: Optional[int] = None

    def applies(self, src: int, dst: int, now: float) -> bool:
        """Whether this spike hits a message sent (src→dst) at ``now``."""
        if not self.t_start <= now < self.t_end:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class TransientSpikes(LatencyModel):
    """Base model plus a list of :class:`Spike` transients.

    Reproduces the Fig. 4 scenario: "the first message from P1 to P2 is
    delayed in transit" — a single spike on that path at t = 0.
    """

    base: LatencyModel
    spikes: Sequence[Spike] = field(default_factory=tuple)

    def delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        d = self.base.delay(src, dst, nbytes, now)
        for spike in self.spikes:
            if spike.applies(src, dst, now):
                d += spike.extra
        return d


class CompositeLatency(LatencyModel):
    """Sum of several latency models (e.g. overhead + wire + jitter)."""

    def __init__(self, models: Sequence[LatencyModel]) -> None:
        if not models:
            raise ValueError("CompositeLatency needs at least one model")
        flattened: list[LatencyModel] = []
        for m in models:
            if isinstance(m, CompositeLatency):
                flattened.extend(m.models)
            else:
                flattened.append(m)
        self.models = tuple(flattened)

    def delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        return sum(m.delay(src, dst, nbytes, now) for m in self.models)

    def __repr__(self) -> str:
        return f"CompositeLatency({list(self.models)!r})"
