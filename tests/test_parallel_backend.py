"""Tests for the real-process (multiprocessing) backend."""

import numpy as np
import pytest

from repro.apps import HeatEquation1D, NBodyProgram
from repro.core import ZeroOrderHold
from repro.nbody import uniform_cube
from repro.parallel import MPRunner

from tests.toy_programs import CoupledIncrement


def test_runner_validation():
    prog = CoupledIncrement(nprocs=2, iterations=2)
    with pytest.raises(ValueError):
        MPRunner(prog, fw=-1)
    with pytest.raises(ValueError):
        MPRunner(prog, cascade="partial")
    with pytest.raises(ValueError):
        MPRunner(prog, latency=-1)
    with pytest.raises(ValueError):
        MPRunner(prog, jitter=-1)


def test_fw0_matches_serial_reference():
    prog = CoupledIncrement(nprocs=2, iterations=5, coupling=0.2)
    result = MPRunner(prog, fw=0).run(timeout=60)
    ref = prog.reference_run()
    for rank in range(2):
        np.testing.assert_allclose(result.final_blocks[rank], ref[rank], atol=1e-12)


def test_fw1_theta_zero_exact():
    prog = CoupledIncrement(nprocs=3, iterations=5, coupling=0.3, threshold=0.0)
    result = MPRunner(prog, fw=1, latency=0.01).run(timeout=60)
    ref = prog.reference_run()
    for rank in range(3):
        np.testing.assert_allclose(result.final_blocks[rank], ref[rank], atol=1e-10)


def test_fw2_runs_and_is_exact_under_perfect_speculation():
    """fw=2 was rejected outright by the old worker; the engine-seated
    backend supports any forward window.  On a constant state a
    zero-order hold predicts perfectly, so even the deeper window
    changes nothing: no rejections, numerics equal the reference."""
    prog = CoupledIncrement(
        nprocs=3, iterations=6, coupling=0.0, rates=[0.0, 0.0, 0.0],
        threshold=0.0, speculator=ZeroOrderHold(),
    )
    result = MPRunner(prog, fw=2, latency=0.02).run(timeout=60)
    ref = prog.reference_run()
    for rank in range(3):
        np.testing.assert_allclose(result.final_blocks[rank], ref[rank],
                                   atol=1e-12)
    assert sum(r.spec_made for r in result.reports) > 0
    assert result.rejection_rate == 0.0


def test_fw1_perfect_speculation_no_rejections():
    prog = CoupledIncrement(
        nprocs=2, iterations=5, coupling=0.0, rates=[0.0, 0.0],
        threshold=0.0, speculator=ZeroOrderHold(),
    )
    result = MPRunner(prog, fw=1, latency=0.02).run(timeout=60)
    assert result.rejection_rate == 0.0
    total_spec = sum(r.spec_made for r in result.reports)
    assert total_spec > 0


def test_nbody_parallel_matches_reference():
    system = uniform_cube(24, seed=0, softening=0.1)
    prog = NBodyProgram(system, [1.0, 1.0], iterations=4, dt=0.01, threshold=0.0)
    result = MPRunner(prog, fw=1, latency=0.01).run(timeout=120)
    final = prog.gather(result.final_blocks)
    ref = prog.reference()
    np.testing.assert_allclose(final.pos, ref.pos, atol=1e-9)


def test_heat_equation_neighbor_topology_parallel():
    rng = np.random.default_rng(3)
    prog = HeatEquation1D(rng.uniform(size=32), [1.0] * 4, iterations=6, threshold=0.0)
    result = MPRunner(prog, fw=1, latency=0.005).run(timeout=60)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-10)


def test_speculation_masks_injected_latency_wall_clock():
    """The headline claim on real processes: with an injected delay
    comparable to the compute time, FW=1 beats FW=0 in wall time."""
    def run(fw):
        prog = CoupledIncrement(
            nprocs=2, iterations=8, coupling=0.0, rates=[0.0, 0.0],
            threshold=0.0, speculator=ZeroOrderHold(), wall_compute=0.05,
        )
        return MPRunner(prog, fw=fw, latency=0.05, seed=1).run(timeout=120)

    t0 = run(0).wall_seconds
    t1 = run(1).wall_seconds
    assert t1 < t0
    # Most of the 0.05 s/iteration injected latency should be masked
    # by the 0.05 s of real compute per iteration.
    assert t1 < 0.75 * t0


def test_phase_seconds_accounting():
    prog = CoupledIncrement(nprocs=2, iterations=6, threshold=0.0)
    result = MPRunner(prog, fw=0, latency=0.02).run(timeout=60)
    assert result.phase_seconds("comm") > 0.0
    assert result.phase_seconds("comm", how="sum") >= result.phase_seconds("comm")
    assert result.phase_seconds("comm", how="mean") <= result.phase_seconds("comm")
    with pytest.raises(ValueError):
        result.phase_seconds("comm", how="median")


def test_jitter_deterministic_results_despite_timing_noise():
    prog = CoupledIncrement(nprocs=2, iterations=4, coupling=0.1, threshold=0.0)
    result = MPRunner(prog, fw=1, latency=0.01, jitter=0.5, seed=7).run(timeout=60)
    ref = prog.reference_run()
    for rank in range(2):
        np.testing.assert_allclose(result.final_blocks[rank], ref[rank], atol=1e-10)
