"""Integration tests: the N-body application on the speculative driver."""

import numpy as np
import pytest

from repro.apps import NBodyProgram
from repro.core import run_program
from repro.netsim import ConstantLatency, DelayNetwork
from repro.nbody import uniform_cube, cold_disk
from repro.vm import Cluster, ProcessorSpec, uniform_specs


def make_cluster(caps, latency=0.0):
    specs = [ProcessorSpec(f"cpu{i}", c) for i, c in enumerate(caps)]
    return Cluster(
        specs,
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def make_program(n=48, p=3, iterations=5, dt=0.01, threshold=0.01, seed=0, **kw):
    system = uniform_cube(n, seed=seed, softening=0.1)
    caps = [1e6] * p
    return NBodyProgram(system, caps, iterations, dt=dt, threshold=threshold, **kw), caps


def test_validation():
    system = uniform_cube(10, seed=0)
    with pytest.raises(ValueError):
        NBodyProgram(system, [1.0, 1.0], 5, dt=0.0)
    from repro.partition import block_partition

    with pytest.raises(ValueError):
        NBodyProgram(system, [1.0, 1.0], 5, partition=block_partition(10, 3))
    with pytest.raises(ValueError):
        NBodyProgram(system, [1.0], 5, partition=block_partition(9, 1))


def test_fw0_matches_serial_reference():
    prog, caps = make_program()
    result = run_program(prog, make_cluster([1e6] * 3, latency=0.1), fw=0)
    final = prog.gather(result.final_blocks)
    ref = prog.reference()
    np.testing.assert_allclose(final.pos, ref.pos, atol=1e-10)
    np.testing.assert_allclose(final.vel, ref.vel, atol=1e-10)


def test_theta_zero_fw1_run_exact():
    """θ=0 with FW=1: every imperfect speculation is corrected *before*
    its consumer block is broadcast -> exact physics."""
    prog, caps = make_program(threshold=0.0)
    result = run_program(prog, make_cluster(caps, latency=0.5), fw=1)
    assert sum(s.tainted_sends for s in result.stats) == 0
    final = prog.gather(result.final_blocks)
    ref = prog.reference()
    np.testing.assert_allclose(final.pos, ref.pos, atol=1e-9)
    np.testing.assert_allclose(final.vel, ref.vel, atol=1e-9)


def test_theta_zero_fw2_bounded_deviation():
    """With FW=2, tainted sends are inherent: a receiver may consume a
    block computed from unverified speculation, and the paper's
    local-only correction never repairs it.  θ=0 then bounds, but does
    not eliminate, the deviation from the serial reference."""
    prog, caps = make_program(threshold=0.0)
    result = run_program(prog, make_cluster(caps, latency=0.5), fw=2)
    final = prog.gather(result.final_blocks)
    ref = prog.reference()
    if sum(s.tainted_sends for s in result.stats) == 0:
        np.testing.assert_allclose(final.pos, ref.pos, atol=1e-9)
    else:
        # One-step speculation error is O(|a| dt^2) ~ 1e-4 here; the
        # propagated deviation must stay in that ballpark.
        np.testing.assert_allclose(final.pos, ref.pos, atol=1e-4)
        assert np.max(np.abs(final.pos - ref.pos)) > 0.0


def test_incremental_correction_is_exact():
    """The O(n_bad x n_own) correction equals a full recomputation."""
    prog, caps = make_program(n=30, p=2, threshold=0.0)
    inputs = {r: prog.initial_block(r) for r in range(2)}
    # Speculate rank 1's block wrongly on purpose.
    wrong = inputs[1].copy()
    wrong[:, :3] += 0.05
    tainted_inputs = dict(inputs)
    tainted_inputs[1] = wrong
    tainted_next = prog.compute(0, tainted_inputs, 0)
    corrected, ops = prog.correct(0, tainted_next, tainted_inputs, 1, wrong, inputs[1], 0)
    clean_next = prog.compute(0, inputs, 0)
    np.testing.assert_allclose(corrected, clean_next, atol=1e-12)
    assert ops > 0


def test_correction_noop_when_all_within_threshold():
    prog, caps = make_program(n=20, p=2, threshold=1e9)
    inputs = {r: prog.initial_block(r) for r in range(2)}
    next_block = prog.compute(0, inputs, 0)
    corrected, ops = prog.correct(0, next_block, inputs, 1, inputs[1], inputs[1], 0)
    assert ops == 0.0
    np.testing.assert_array_equal(corrected, next_block)


def test_speculation_accepted_with_loose_threshold_small_dt():
    """Slow motion + θ=0.01 gives a low rejection rate (paper: ~2%)."""
    prog, caps = make_program(n=64, p=4, iterations=6, dt=0.005, threshold=0.01)
    result = run_program(prog, make_cluster(caps, latency=0.5), fw=1)
    assert prog.spec_stats.particles_checked > 0
    assert prog.spec_stats.incorrect_fraction < 0.3


def test_tighter_threshold_more_rejections():
    def frac(theta):
        prog, caps = make_program(n=48, p=3, iterations=5, dt=0.01, threshold=theta)
        run_program(prog, make_cluster(caps, latency=0.5), fw=1)
        return prog.spec_stats.incorrect_fraction

    loose = frac(0.05)
    tight = frac(0.0005)
    assert tight >= loose


def test_gather_preserves_masses_and_constants():
    prog, caps = make_program()
    result = run_program(prog, make_cluster(caps, latency=0.1), fw=1)
    final = prog.gather(result.final_blocks)
    np.testing.assert_array_equal(final.mass, prog.system.mass)
    assert final.G == prog.system.G
    assert final.softening == prog.system.softening


def test_momentum_conserved_in_parallel_run():
    prog, caps = make_program(threshold=0.0)
    result = run_program(prog, make_cluster(caps, latency=0.3), fw=1)
    final = prog.gather(result.final_blocks)
    np.testing.assert_allclose(final.momentum(), prog.system.momentum(), atol=1e-9)


def test_speculation_gap_handling_fw2():
    """With FW=2 the speculation may bridge a 2-iteration gap (Eq. 10
    applied over gap*dt); θ=0 keeps the run close to the reference
    (exact up to tainted-send propagation, see above)."""
    prog, caps = make_program(n=24, p=2, iterations=6, threshold=0.0)
    cluster = make_cluster(caps, latency=2.0)
    result = run_program(prog, cluster, fw=2)
    final = prog.gather(result.final_blocks)
    ref = prog.reference()
    np.testing.assert_allclose(final.pos, ref.pos, atol=1e-4)


def test_record_force_errors_flag():
    prog, caps = make_program(n=32, p=2, iterations=4, threshold=0.05,
                              record_force_errors=True)
    run_program(prog, make_cluster(caps, latency=0.5), fw=1)
    # Accepted speculations exist, so a force error was recorded.
    assert prog.spec_stats.max_accepted_force_error >= 0.0
    if prog.spec_stats.particles_rejected < prog.spec_stats.particles_checked:
        assert prog.spec_stats.max_accepted_force_error > 0.0


def test_force_error_scales_with_threshold():
    """Looser θ admits larger accepted force errors (Table 3's trend)."""
    def max_err(theta):
        prog, caps = make_program(
            n=48, p=3, iterations=6, dt=0.02, threshold=theta,
            record_force_errors=True,
        )
        run_program(prog, make_cluster(caps, latency=0.5), fw=1)
        return prog.spec_stats.max_accepted_force_error

    assert max_err(0.1) >= max_err(0.001)


def test_cost_model_values():
    prog, caps = make_program(n=48, p=3)
    n_own = len(prog.partition.indices(0))
    assert prog.compute_ops(0) == pytest.approx(70.0 * n_own * 48 + 12.0 * n_own)
    n_k = len(prog.partition.indices(1))
    assert prog.speculate_ops(0, 1) == pytest.approx(12.0 * n_k)
    assert prog.check_ops(0, 1) == pytest.approx(24.0 * n_k)
    assert prog.block_nbytes(1) == 48 * n_k + 64


def test_heterogeneous_capacities_allocation():
    system = uniform_cube(100, seed=1, softening=0.1)
    prog = NBodyProgram(system, [4e6, 1e6], 3)
    counts = prog.partition.counts
    assert counts[0] == 80 and counts[1] == 20


def test_cold_disk_speculation_very_accurate():
    """Near-circular orbits: constant-velocity speculation rarely rejected."""
    system = cold_disk(50, seed=3)
    prog = NBodyProgram(system, [1e6, 1e6], 5, dt=0.001, threshold=0.01)
    cluster = make_cluster([1e6, 1e6], latency=0.5)
    run_program(prog, cluster, fw=1)
    assert prog.spec_stats.incorrect_fraction < 0.05
