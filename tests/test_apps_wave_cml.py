"""Tests for the wave-equation and coupled-map-lattice applications."""

import numpy as np
import pytest

from repro.apps import CoupledMapLattice, WaveEquation1D
from repro.core import LinearExtrapolation, run_program
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs


def make_cluster(p, latency=0.0, capacity=1e6):
    return Cluster(
        uniform_specs(p, capacity=capacity),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def gaussian_pulse(n=96, center=0.3, width=0.05):
    x = np.linspace(0.0, 1.0, n)
    return np.exp(-((x - center) ** 2) / (2 * width**2))


# ------------------------------------------------------------------- wave
def wave_program(n=96, p=4, iterations=30, **kw):
    kw.setdefault("threshold", 0.0)
    return WaveEquation1D(gaussian_pulse(n), [1e6] * p, iterations, courant=0.9, **kw)


def test_wave_validation():
    with pytest.raises(ValueError):
        WaveEquation1D(np.zeros((2, 2)), [1.0], 5)
    with pytest.raises(ValueError):
        WaveEquation1D(np.zeros(10), [1.0, 1.0], 5, courant=1.5)
    from repro.partition import cyclic_partition

    with pytest.raises(ValueError):
        WaveEquation1D(np.zeros(10), [1.0, 1.0], 5, partition=cyclic_partition(10, 2))


def test_wave_topology():
    prog = wave_program(p=4)
    assert prog.needed(0) == frozenset({1})
    assert prog.needed(2) == frozenset({1, 3})


def test_wave_fw0_matches_reference():
    prog = wave_program()
    result = run_program(prog, make_cluster(4, latency=0.05), fw=0)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-12)


def test_wave_fw1_theta_zero_exact():
    prog = wave_program()
    result = run_program(prog, make_cluster(4, latency=0.4), fw=1)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-10)


def test_wave_incremental_correction_exact():
    prog = wave_program(p=2)
    inputs = {0: prog.initial_block(0), 1: prog.initial_block(1)}
    wrong = inputs[1].copy()
    wrong[0, 0] += 0.2
    tainted = dict(inputs)
    tainted[1] = wrong
    bad = prog.compute(0, tainted, 0)
    fixed, ops = prog.correct(0, bad, tainted, 1, wrong, inputs[1], 0)
    clean = prog.compute(0, inputs, 0)
    np.testing.assert_allclose(fixed, clean, atol=1e-14)
    assert ops == 4.0


def test_wave_energy_approximately_conserved():
    prog = wave_program(iterations=100)
    result = run_program(prog, make_cluster(4), fw=1)
    e_final = prog.energy(result.final_blocks)
    initial_blocks = {r: prog.initial_block(r) for r in range(4)}
    e_initial = prog.energy(initial_blocks)
    assert e_final == pytest.approx(e_initial, rel=0.05)


def test_wave_pulse_travels():
    """The pulse peak moves across the domain (dynamics are not decay)."""
    prog = wave_program(iterations=40)
    result = run_program(prog, make_cluster(4), fw=1)
    u = prog.gather(result.final_blocks)
    start_peak = int(np.argmax(gaussian_pulse()))
    # The single initial pulse splits into two traveling halves.
    assert abs(int(np.argmax(np.abs(u))) - start_peak) > 5


def test_wave_linear_extrapolation_beats_hold():
    """On a traveling wave the ghost value moves every step: a hold is
    wrong by the first difference of the series while linear
    extrapolation is wrong only by the second difference (~6x smaller
    for this pulse).  Measured at theta = 0 so corrections keep the
    trajectory exact and the error statistics uncontaminated."""
    from repro.core import ZeroOrderHold

    def median_error(speculator):
        errors = []

        class Instrumented(WaveEquation1D):
            def check(self, rank, k, speculated, actual, own):
                e = super().check(rank, k, speculated, actual, own)
                errors.append(e)
                return e

        prog = Instrumented(
            gaussian_pulse(96, width=0.08), [1e6] * 4, 60,
            courant=1.0, threshold=0.0, speculator=speculator,
        )
        run_program(prog, make_cluster(4, latency=0.4), fw=1)
        return float(np.median(errors))

    err_hold = median_error(ZeroOrderHold())
    err_linear = median_error(LinearExtrapolation())
    assert err_linear < 0.4 * err_hold


def test_wave_accepted_errors_persist_in_conservative_dynamics():
    """Unlike dissipative problems (heat), the wave equation conserves
    perturbations: errors accepted under a loose theta accumulate and
    travel instead of decaying, so the final deviation from the serial
    reference grows far beyond a single step's tolerance."""
    def final_deviation(theta):
        prog = wave_program(iterations=80, threshold=theta)
        result = run_program(prog, make_cluster(4, latency=0.4), fw=1)
        return float(np.max(np.abs(prog.gather(result.final_blocks) - prog.reference())))

    exact = final_deviation(0.0)
    loose = final_deviation(2e-2)
    assert exact < 1e-10
    assert loose > 10 * 2e-2 * 0.01  # clearly nonzero accumulated drift
    assert loose > exact


# -------------------------------------------------------------------- CML
def cml_program(n=64, p=4, iterations=20, **kw):
    rng = np.random.default_rng(9)
    initial = rng.uniform(0.2, 0.8, size=n)
    kw.setdefault("threshold", 0.0)
    return CoupledMapLattice(initial, [1e6] * p, iterations, **kw)


def test_cml_validation():
    with pytest.raises(ValueError):
        CoupledMapLattice(np.array([0.5, 1.5]), [1.0], 5)  # out of (0,1)
    with pytest.raises(ValueError):
        cml_program(r=5.0)
    with pytest.raises(ValueError):
        cml_program(coupling=1.5)


def test_cml_periodic_topology():
    prog = cml_program(p=4)
    assert prog.needed(0) == frozenset({1, 3})
    assert prog.needed(3) == frozenset({2, 0})
    prog2 = cml_program(p=2)
    assert prog2.needed(0) == frozenset({1})


def test_cml_fw0_matches_reference():
    prog = cml_program()
    result = run_program(prog, make_cluster(4, latency=0.05), fw=0)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-12)


def test_cml_fw1_theta_zero_exact_despite_chaos():
    """theta=0 keeps even chaotic dynamics exact: every wrong
    speculation gets corrected before the next send."""
    prog = cml_program(iterations=15)
    result = run_program(prog, make_cluster(4, latency=0.3), fw=1)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-9)


def test_cml_two_rank_periodic_exact():
    prog = cml_program(p=2, iterations=12)
    result = run_program(prog, make_cluster(2, latency=0.3), fw=1)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-9)


def test_cml_chaos_defeats_speculation():
    """The negative control: in the chaotic regime nearly every
    speculation is rejected; in the stable regime nearly none are."""
    chaotic = cml_program(r=3.9, iterations=40, threshold=1e-3)
    res_c = run_program(chaotic, make_cluster(4, latency=0.3), fw=1)
    stable = cml_program(r=2.5, iterations=40, threshold=1e-3)
    res_s = run_program(stable, make_cluster(4, latency=0.3), fw=1)
    assert res_c.rejection_rate > 0.6
    # Stable map converges to the fixed point: speculation succeeds
    # once the transient dies out.
    assert res_s.rejection_rate < 0.4
    assert res_s.rejection_rate < res_c.rejection_rate


def test_cml_states_remain_bounded():
    prog = cml_program(iterations=50, threshold=1e-2)
    result = run_program(prog, make_cluster(4, latency=0.2), fw=1)
    x = prog.gather(result.final_blocks)
    assert np.all((x >= 0.0) & (x <= 1.0))
