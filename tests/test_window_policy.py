"""The backend-agnostic speculation-policy layer (PR 8).

Covers the :mod:`repro.policy` package itself (``CascadePolicy``,
``StaticWindow``, ``AimdWindow``), the engine seat (``WindowChanged``
effects, per-rank spawning, bound validation), parity (a seated
``StaticWindow(fw)`` run is effect-for-effect identical to a plain
fixed-FW run on every backend), the pipe transport's blocked-receive
accounting that feeds the controller on real processes, and the
``window-policy-bound`` sanitizer seat.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.analysis import ProtocolSanitizer, ProtocolViolation
from repro.core import run_program
from repro.core import ZeroOrderHold
from repro.engine import Recv, run_loopback
from repro.engine.core import SpecEngine, topology
from repro.engine.pipes import PipeTransport
from repro.netsim import ConstantLatency, DelayNetwork
from repro.parallel import MPRunner
from repro.policy import AimdWindow, CascadePolicy, StaticWindow, WindowPolicy
from repro.trace import EventLog
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement


def make_cluster(p, latency, capacity=1000.0):
    return Cluster(
        uniform_specs(p, capacity=capacity),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def constant_prog(nprocs=2, iterations=12, **kw):
    kw.setdefault("threshold", 0.0)
    kw.setdefault("speculator", ZeroOrderHold())
    return CoupledIncrement(
        nprocs=nprocs, iterations=iterations, coupling=0.0,
        rates=[0.0] * nprocs, ops_per_compute=1000.0, **kw,
    )


# ------------------------------------------------------------ CascadePolicy
def test_cascade_policy_coerce_accepts_strings_and_members():
    assert CascadePolicy.coerce("recompute") is CascadePolicy.RECOMPUTE
    assert CascadePolicy.coerce("none") is CascadePolicy.NONE
    assert CascadePolicy.coerce(CascadePolicy.NONE) is CascadePolicy.NONE


def test_cascade_policy_rejects_unknown_with_historical_message():
    with pytest.raises(ValueError, match="unknown cascade policy 'both'"):
        CascadePolicy.coerce("both")


def test_cascade_policy_str_compatibility():
    """str subclass: existing ``== "none"`` comparisons and JSON/pickle
    call sites keep working unchanged."""
    assert CascadePolicy.RECOMPUTE == "recompute"
    assert str(CascadePolicy.NONE) == "none"
    import pickle

    assert pickle.loads(pickle.dumps(CascadePolicy.NONE)) is CascadePolicy.NONE


# ------------------------------------------------------------- StaticWindow
def test_static_window_is_frozen_and_inert():
    win = StaticWindow(2)
    assert isinstance(win, WindowPolicy)
    assert (win.min_fw, win.max_fw) == (2, 2)
    assert win.spawn() is win  # stateless: one instance serves all ranks
    assert win.on_iteration(0, fw=2, epoch_wait=9.9, checks=5, rejects=5,
                            now=1.0) == 2
    assert win.state() == ()
    with pytest.raises(ValueError):
        StaticWindow(-1)


# --------------------------------------------------------------- AimdWindow
def test_aimd_validation_mirrors_adaptive_policy():
    with pytest.raises(ValueError):
        AimdWindow(epoch=0)
    with pytest.raises(ValueError):
        AimdWindow(min_fw=3, max_fw=2)
    with pytest.raises(ValueError):
        AimdWindow(reject_low=0.5, reject_high=0.2)
    with pytest.raises(ValueError):
        AimdWindow(wait_fraction=-0.1)


def test_aimd_spawn_gives_independent_controllers():
    template = AimdWindow(epoch=1, max_fw=4)
    a, b = template.spawn(), template.spawn()
    assert a is not template and a is not b
    # Drive a only: heavy waiting, perfect speculation -> widen.
    fw = a.on_iteration(0, fw=1, epoch_wait=1.0, checks=4, rejects=0, now=1.0)
    assert fw == 2
    assert a.state() != b.state()  # a's marks moved; b untouched


def test_aimd_widens_on_wait_and_shrinks_on_rejection():
    win = AimdWindow(epoch=2, min_fw=0, max_fw=3)
    # Epoch boundary at t=1: 100% rejection -> shrink.
    assert win.on_iteration(0, fw=1, epoch_wait=0.0, checks=1, rejects=1,
                            now=1.0) == 1  # not an epoch boundary
    assert win.on_iteration(1, fw=1, epoch_wait=0.0, checks=2, rejects=2,
                            now=2.0) == 0
    # Next epoch: long waits, clean checks -> widen.
    assert win.on_iteration(3, fw=0, epoch_wait=1.0, checks=4, rejects=2,
                            now=4.0) == 1
    assert len(win.state()) == 4


def test_aimd_holds_inside_deadband():
    """No waiting and moderate rejection: neither gate trips."""
    win = AimdWindow(epoch=1, min_fw=0, max_fw=4)
    assert win.on_iteration(0, fw=2, epoch_wait=0.0, checks=5, rejects=1,
                            now=1.0) == 2


# -------------------------------------------------------------- engine seat
def test_engine_validates_initial_fw_against_policy_bounds():
    prog = constant_prog(iterations=2)
    needed, audience = topology(prog)
    with pytest.raises(ValueError, match="initial fw"):
        SpecEngine(prog, 0, needed[0], audience[0], fw=5,
                   policy=AimdWindow(max_fw=3))


def test_run_program_rejects_out_of_bounds_initial_fw():
    with pytest.raises(ValueError, match="initial fw"):
        run_program(constant_prog(), make_cluster(2, 0.1), fw=5,
                    window_policy=AimdWindow(max_fw=3))


def test_des_window_history_seeded_and_recorded():
    res = run_program(
        constant_prog(iterations=16), make_cluster(2, latency=3.0), fw=1,
        window_policy=AimdWindow(epoch=2, min_fw=0, max_fw=3),
    )
    assert len(res.window_history) == 2
    for history in res.window_history:
        assert history[0] == (0, 1)
        assert all(abs(b - a) == 1
                   for (_, a), (_, b) in zip(history, history[1:]))
    # comm >> compute and perfect speculation: somebody widened.
    assert any(fw > 1 for fw in res.final_windows())
    assert res.final_windows() == [h[-1][1] for h in res.window_history]


def test_window_events_land_in_the_des_trace():
    log = EventLog()
    cluster = make_cluster(2, latency=3.0)
    cluster.event_log = log
    run_program(
        constant_prog(iterations=16), cluster, fw=1,
        window_policy=AimdWindow(epoch=2, min_fw=0, max_fw=3),
    )
    window_events = [e for e in log if e.kind == "window"]
    assert window_events
    for event in window_events:
        assert 0 <= event.peer <= 3  # peer column carries the new FW


# ------------------------------------------------------------------- parity
def _des_fingerprint(window_policy):
    log = EventLog()
    cluster = make_cluster(3, latency=0.4)
    cluster.event_log = log
    prog = CoupledIncrement(nprocs=3, iterations=6, coupling=0.2,
                            threshold=0.0, ops_per_compute=1000.0)
    res = run_program(prog, cluster, fw=1, window_policy=window_policy)
    return (
        repr(res.makespan),
        {r: np.asarray(b).tobytes() for r, b in res.final_blocks.items()},
        [(s.spec_made, s.spec_accepted, s.spec_rejected, s.checks,
          s.recomputes) for s in res.stats],
        list(log),
    )


def test_static_window_parity_on_des():
    """StaticWindow(fw) is pure plumbing: bit-identical effects, trace
    and numerics to the plain fixed-FW run."""
    assert _des_fingerprint(None) == _des_fingerprint(StaticWindow(1))


def test_static_window_parity_on_loopback():
    prog = CoupledIncrement(nprocs=3, iterations=7, coupling=0.3,
                            threshold=0.0)
    plain_log, seated_log = EventLog(), EventLog()
    plain = run_loopback(prog, fw=1, event_log=plain_log)
    seated = run_loopback(prog, fw=1, event_log=seated_log,
                          window_policy=StaticWindow(1))
    for rank in range(3):
        np.testing.assert_array_equal(plain[0][rank], seated[0][rank])
    assert [vars(s) for s in plain[1]] == [vars(s) for s in seated[1]]
    assert list(plain_log) == list(seated_log)
    assert seated[2].window_history == {0: [], 1: [], 2: []}


def _mp_fingerprint(window_policy):
    prog = CoupledIncrement(nprocs=2, iterations=5, coupling=0.2,
                            threshold=0.0)
    result = MPRunner(
        prog, fw=1, latency=0.01, seed=3, record_events=True,
        window_policy=window_policy,
    ).run(timeout=120)
    events = [
        (e.rank, e.seq, e.kind, e.peer, e.family, e.iteration)
        for e in result.event_log()
    ]
    return (
        {r: np.asarray(b).tobytes() for r, b in result.final_blocks.items()},
        [(r.spec_made, r.spec_accepted, r.spec_rejected, r.checks)
         for r in result.reports],
        events,
    )


def test_static_window_parity_on_pipes():
    """Same protocol steps in the same order on real processes (times
    excluded: wall clocks jitter, the effect stream must not)."""
    assert _mp_fingerprint(None) == _mp_fingerprint(StaticWindow(1))


# -------------------------------------- pipes: blocked-receive accounting
def test_pipe_recv_reports_blocked_seconds_in_waited():
    """Satellite 1: the wall-clock epoch-wait signal.  A receive that
    parks in select must surface the blocked span in Arrival.waited —
    that is what the engine accumulates into ``epoch_wait`` and what
    the AIMD controller's widen gate reads on the mp backend."""
    ours, theirs = mp.Pipe(duplex=True)
    transport = PipeTransport(rank=0, conns={1: ours})
    delay = 0.3
    theirs.send((0, time.monotonic() + delay, 1, "late payload"))
    arrival = transport.recv(Recv(phase="comm", iteration=1))
    assert arrival.payload == "late payload"
    assert arrival.waited >= delay * 0.9
    assert arrival.waited == pytest.approx(
        transport.phase_seconds["comm"], abs=0.05
    )


def test_pipe_immediate_recv_reports_near_zero_wait():
    ours, theirs = mp.Pipe(duplex=True)
    transport = PipeTransport(rank=0, conns={1: ours})
    theirs.send((0, time.monotonic() - 1.0, 1, "ready"))
    time.sleep(0.02)
    arrival = transport.recv(Recv(phase="comm", iteration=1))
    assert arrival.waited < 0.1


# --------------------------------------------------- mp adaptive end-to-end
def test_mp_adaptive_widens_and_stays_correct():
    """p=2 real processes, injected latency >> compute, perfect
    speculation: at least one rank widens past its initial window, per
    rank trajectories come back in the reports, and the numerics still
    equal the blocking reference exactly (theta=0 + exact ZOH)."""
    prog = constant_prog(nprocs=2, iterations=12)
    result = MPRunner(
        prog, fw=1, latency=0.05, seed=7,
        window_policy=AimdWindow(epoch=2, min_fw=0, max_fw=3),
    ).run(timeout=120)

    history = result.window_history()
    assert set(history) == {0, 1}
    for rank, trajectory in history.items():
        assert trajectory[0] == (0, 1)
        fws = [fw for _, fw in trajectory]
        assert all(0 <= fw <= 3 for fw in fws)
    assert any(fw > 1 for fw in result.final_windows())

    ref = prog.reference_run()
    for rank in range(2):
        np.testing.assert_allclose(result.final_blocks[rank], ref[rank],
                                   atol=1e-12)


def test_mp_static_window_reports_trivial_history():
    prog = constant_prog(nprocs=2, iterations=4)
    result = MPRunner(prog, fw=1, latency=0.0, seed=1).run(timeout=120)
    assert result.window_history() == {0: [(0, 1)], 1: [(0, 1)]}
    assert result.final_windows() == [1, 1]


# ------------------------------------------------------- sanitizer seat
def test_sanitizer_rejects_window_outside_bounds():
    san = ProtocolSanitizer()
    san.on_window_changed(0, 2, 1, 2, 0, 2)  # legal move to the bound
    with pytest.raises(ProtocolViolation) as exc:
        san.on_window_changed(0, 4, 2, 3, 0, 2)
    assert exc.value.invariant == "window-policy-bound"


def test_sanitizer_rejects_stale_window_gate():
    """After the policy announces fw=2, a compute gated on the old fw=1
    means some consumer cached the constructor's window."""
    san = ProtocolSanitizer()
    san.on_window_changed(0, 1, 1, 2, 0, 4)
    with pytest.raises(ProtocolViolation) as exc:
        san.on_compute_begin(0, 2, verified_upto=1, fw=1)
    assert exc.value.invariant == "window-policy-bound"
    # The current window itself is fine.
    ProtocolSanitizer().on_compute_begin(0, 2, verified_upto=1, fw=2)


# ----------------------------------------------------------- specmc seat
def test_specmc_explores_aimd_window_cleanly():
    from repro.analysis.modelcheck import McConfig, explore

    result = explore(McConfig(p=2, fw=1, bw=1, iters=3, window="aimd"))
    assert result.violation is None
    assert result.explored > 0


def test_specmc_aimd_trajectory_reaches_both_directions():
    """Under drift (every speculation rejected) the canonical schedule
    shrinks the window; under constant (waits dominate) it widens —
    the model's deterministic clock makes both decisions reachable."""
    from repro.analysis.modelcheck import McConfig
    from repro.analysis.modelcheck.model import Execution

    def final_fws(scenario):
        ex = Execution(McConfig(p=2, fw=1, iters=3, window="aimd",
                                scenario=scenario))
        while not ex.is_done and ex.violation is None:
            actions = ex.enabled_actions()
            if not actions:
                break
            ex.apply(min(actions, key=lambda a: (a.kind, a.rank, a.src,
                                                 a.idx)))
        assert ex.violation is None
        return [ex.engines[r].fw for r in sorted(ex.engines)]

    assert min(final_fws("drift")) == 0     # shrank toward blocking
    assert max(final_fws("constant")) == 2  # widened to the bound


def test_specmc_runaway_window_mutation_is_caught():
    from repro.analysis.modelcheck import McConfig, explore

    result = explore(McConfig(p=2, fw=1, bw=1, iters=3),
                     mutation="runaway-window")
    assert result.violation is not None
    assert result.violation.invariant == "window-policy-bound"
