"""Property-based tests: DES kernel ordering and store invariants."""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Store


@settings(max_examples=100, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=30))
def test_property_events_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, d, tag):
        yield env.timeout(d)
        fired.append((env.now, tag))

    for i, d in enumerate(delays):
        env.process(proc(env, d, i))
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    # Ties break in creation order.
    assert sorted(fired) == fired


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=20),
    until=st.floats(0.0, 15.0, allow_nan=False),
)
def test_property_run_until_never_overshoots(delays, until):
    env = Environment()
    for d in delays:
        env.timeout(d)
    env.run(until=until)
    assert env.now == pytest.approx(until)


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.integers(0, 100)),
            st.tuples(st.just("get"), st.just(0)),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_store_fifo_semantics(ops):
    """A Store behaves exactly like a FIFO queue (model-based test)."""
    env = Environment()
    store = Store(env)
    model = deque()
    got = []
    expected = []

    def proc(env):
        for kind, value in ops:
            if kind == "put":
                yield store.put(value)
                model.append(value)
            elif model:
                # Only get when the model says an item is available, so
                # the test never blocks.
                item = yield store.get()
                got.append(item)
                expected.append(model.popleft())

    env.process(proc(env))
    env.run()
    assert got == expected
    assert list(store.items) == list(model)


@settings(max_examples=60, deadline=None)
@given(
    n_producers=st.integers(1, 4),
    items_each=st.integers(1, 5),
)
def test_property_store_conserves_items(n_producers, items_each):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, base):
        for i in range(items_each):
            yield env.timeout(0.5)
            yield store.put(base * 100 + i)

    def consumer(env, total):
        for _ in range(total):
            item = yield store.get()
            received.append(item)

    for b in range(n_producers):
        env.process(producer(env, b))
    env.process(consumer(env, n_producers * items_each))
    env.run()
    assert len(received) == n_producers * items_each
    assert len(set(received)) == len(received)  # nothing duplicated
