"""Unit tests for the discrete-event kernel (events, processes, clock)."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 3.5
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1, value="hello")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "hello"


def test_process_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(5)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return result

    p = env.process(parent(env))
    env.run()
    assert p.value == 42


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for d in (1, 2, 3):
            yield env.timeout(d)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1, 3, 6]


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1)

    env.process(proc(env))
    env.run(until=4.5)
    assert env.now == 4.5


def test_run_until_time_in_past_rejected():
    env = Environment(initial_time=5)
    with pytest.raises(SimulationError):
        env.run(until=3)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2


def test_run_until_never_triggered_event_raises():
    env = Environment()
    orphan = env.event()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_exception_in_process_propagates_through_wait():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            return str(exc)

    p = env.process(parent(env))
    env.run()
    assert p.value == "boom"


def test_unhandled_process_failure_surfaces_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_succeed_once_only():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    evt = env.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    evt = env.event()
    with pytest.raises(SimulationError):
        _ = evt.value
    with pytest.raises(SimulationError):
        _ = evt.ok


def test_manual_event_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        val = yield gate
        log.append((env.now, val))

    def opener(env):
        yield env.timeout(7)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(7, "open")]


def test_anyof_first_wins():
    env = Environment()

    def proc(env):
        fast = env.timeout(1, value="fast")
        slow = env.timeout(10, value="slow")
        results = yield AnyOf(env, [fast, slow])
        return list(results.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["fast"]
    assert env.now == 10  # slow timeout still drains


def test_allof_waits_for_all():
    env = Environment()

    def proc(env):
        a = env.timeout(1, value="a")
        b = env.timeout(5, value="b")
        results = yield AllOf(env, [a, b])
        return (env.now, sorted(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (5, ["a", "b"])


def test_condition_operators():
    env = Environment()

    def proc(env):
        a = env.timeout(1, value=1)
        b = env.timeout(2, value=2)
        res = yield a & b
        return sum(res.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == 3


def test_empty_allof_triggers_immediately():
    env = Environment()

    def proc(env):
        res = yield AllOf(env, [])
        return res

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_yield_already_processed_event_resumes():
    env = Environment()

    def proc(env):
        t = env.timeout(1, value="x")
        yield env.timeout(5)  # t fires and is processed meanwhile
        val = yield t
        return (env.now, val)

    p = env.process(proc(env))
    env.run()
    assert p.value == (5, "x")


def test_yield_non_event_is_error():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        return env.now

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == 7


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4)
    assert env.peek() == 4
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_schedule_into_past_rejected():
    env = Environment()
    evt = env.event()
    with pytest.raises(SimulationError):
        env.schedule(evt, delay=-1)


def test_determinism_same_seed_same_trace():
    def build_and_run():
        env = Environment()
        log = []

        def proc(env, tag, delay):
            yield env.timeout(delay)
            log.append((env.now, tag))

        for i, d in enumerate([3, 1, 2, 1, 3]):
            env.process(proc(env, i, d))
        env.run()
        return log

    assert build_and_run() == build_and_run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_empty_schedule_error():
    from repro.des.errors import EmptySchedule

    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_condition_failure_propagates():
    """If any sub-event of an AllOf fails, the condition fails too."""
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise ValueError("sub-event failed")

    def waiter(env):
        ok = env.timeout(5, value="ok")
        bad = env.process(failer(env))
        try:
            yield AllOf(env, [ok, bad])
        except ValueError as exc:
            return f"caught: {exc}"

    p = env.process(waiter(env))
    env.run()
    assert p.value == "caught: sub-event failed"


def test_anyof_with_already_processed_event():
    env = Environment()

    def proc(env):
        done = env.timeout(1, value="early")
        yield env.timeout(3)
        res = yield AnyOf(env, [done, env.timeout(10)])
        return list(res.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["early"]


def test_condition_cross_environment_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(SimulationError):
        AllOf(env1, [env1.timeout(1), env2.timeout(1)])


def test_event_trigger_copies_outcome():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.succeed(42)
    dst.trigger(src)
    assert dst.value == 42

    src2 = env.event()
    dst2 = env.event()
    src2.fail(ValueError("x"))
    src2.defused = True
    dst2.trigger(src2)
    assert isinstance(dst2.value, ValueError)
    dst2.defused = True
    env.run()


def test_run_until_already_processed_event():
    env = Environment()
    t = env.timeout(1, value="v")
    env.run()
    assert env.run(until=t) == "v"


def test_run_until_failed_processed_event_raises():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    def watcher(env, target):
        try:
            yield target
        except RuntimeError:
            pass

    p = env.process(bad(env))
    env.process(watcher(env, p))
    env.run()
    with pytest.raises(RuntimeError):
        env.run(until=p)


def test_repr_forms():
    env = Environment()
    evt = env.event()
    assert "pending" in repr(evt)
    evt.succeed()
    assert "triggered" in repr(evt)

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env), name="worker")
    assert "worker" in repr(p)
    assert "Environment" in repr(env)
