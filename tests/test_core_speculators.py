"""Unit + property tests for speculation functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LinearExtrapolation,
    PolynomialExtrapolation,
    WeightedHistory,
    ZeroOrderHold,
)


def hist(*rows):
    times = list(range(len(rows)))
    values = [np.asarray(r, dtype=float) for r in rows]
    return times, values


def test_zoh_holds_last_value():
    times, values = hist([1.0, 2.0], [3.0, 4.0])
    out = ZeroOrderHold().extrapolate(times, values, 2)
    np.testing.assert_allclose(out, [3.0, 4.0])


def test_zoh_returns_copy():
    times, values = hist([1.0])
    out = ZeroOrderHold().extrapolate(times, values, 1)
    out[0] = 99.0
    assert values[-1][0] == 1.0


def test_linear_exact_on_linear_trajectory():
    times, values = hist([0.0], [1.0], [2.0])
    out = LinearExtrapolation().extrapolate(times, values, 5)
    np.testing.assert_allclose(out, [5.0])


def test_linear_handles_gaps_in_times():
    # samples at t=0 and t=4, extrapolate to t=6
    out = LinearExtrapolation().extrapolate([0, 4], [np.array([0.0]), np.array([8.0])], 6)
    np.testing.assert_allclose(out, [12.0])


def test_linear_degrades_to_hold_with_one_point():
    out = LinearExtrapolation().extrapolate([0], [np.array([7.0])], 3)
    np.testing.assert_allclose(out, [7.0])


def test_polynomial_exact_on_quadratic():
    ts = [0, 1, 2]
    vs = [np.array([float(t * t)]) for t in ts]
    out = PolynomialExtrapolation(order=2).extrapolate(ts, vs, 4)
    np.testing.assert_allclose(out, [16.0])


def test_polynomial_order_zero_is_hold():
    out = PolynomialExtrapolation(order=0).extrapolate([0, 1], [np.array([1.0]), np.array([5.0])], 2)
    np.testing.assert_allclose(out, [5.0])


def test_polynomial_degrades_with_short_history():
    # order 3 wants 4 points; give 2 -> linear behaviour
    out = PolynomialExtrapolation(order=3).extrapolate([0, 1], [np.array([0.0]), np.array([2.0])], 3)
    np.testing.assert_allclose(out, [6.0])


def test_polynomial_validation():
    with pytest.raises(ValueError):
        PolynomialExtrapolation(order=-1)


def test_weighted_history_explicit_weights():
    # x* = 2*x(t-1) - 1*x(t-2): linear extrapolation weights
    ts, vs = hist([1.0], [3.0])
    out = WeightedHistory([2.0, -1.0]).extrapolate(ts, vs, 2)
    np.testing.assert_allclose(out, [5.0])


def test_weighted_history_truncates_and_renormalises():
    # weights (0.5, 0.5) but only one sample -> full weight on it
    out = WeightedHistory([0.5, 0.5]).extrapolate([0], [np.array([4.0])], 1)
    np.testing.assert_allclose(out, [4.0])


def test_weighted_history_validation():
    with pytest.raises(ValueError):
        WeightedHistory([])


def test_backward_window_sizes():
    assert ZeroOrderHold().backward_window == 1
    assert LinearExtrapolation().backward_window == 2
    assert PolynomialExtrapolation(order=3).backward_window == 4
    assert WeightedHistory([1, 2, 3]).backward_window == 3


@pytest.mark.parametrize(
    "spec",
    [ZeroOrderHold(), LinearExtrapolation(), PolynomialExtrapolation(2), WeightedHistory([1.0])],
)
def test_common_validation(spec):
    v = [np.array([1.0])]
    with pytest.raises(ValueError):
        spec.extrapolate([], [], 1)  # empty history
    with pytest.raises(ValueError):
        spec.extrapolate([0, 1], v, 2)  # length mismatch
    with pytest.raises(ValueError):
        spec.extrapolate([1, 0], v * 2, 2)  # non-increasing times
    with pytest.raises(ValueError):
        spec.extrapolate([0], v, 0)  # target not in future


@settings(max_examples=100, deadline=None)
@given(
    x0=st.floats(-100, 100),
    slope=st.floats(-10, 10),
    n=st.integers(2, 6),
    target_gap=st.integers(1, 5),
)
def test_property_linear_extrapolation_exact_on_lines(x0, slope, n, target_gap):
    times = list(range(n))
    values = [np.array([x0 + slope * t]) for t in times]
    target = n - 1 + target_gap
    out = LinearExtrapolation().extrapolate(times, values, target)
    np.testing.assert_allclose(out, [x0 + slope * target], rtol=1e-9, atol=1e-7)


@settings(max_examples=50, deadline=None)
@given(
    coeffs=st.lists(st.floats(-5, 5), min_size=3, max_size=3),
    n=st.integers(3, 6),
)
def test_property_quadratic_extrapolation_exact_on_quadratics(coeffs, n):
    a, b, c = coeffs
    times = list(range(n))
    values = [np.array([a * t * t + b * t + c]) for t in times]
    out = PolynomialExtrapolation(order=2).extrapolate(times, values, n + 1)
    expect = a * (n + 1) ** 2 + b * (n + 1) + c
    np.testing.assert_allclose(out, [expect], rtol=1e-7, atol=1e-6)


def test_multidimensional_blocks_supported():
    values = [np.arange(6, dtype=float).reshape(2, 3) * (t + 1) for t in range(2)]
    out = LinearExtrapolation().extrapolate([0, 1], values, 2)
    np.testing.assert_allclose(out, np.arange(6, dtype=float).reshape(2, 3) * 3)


def test_damped_linear_interpolates_between_hold_and_linear():
    from repro.core import DampedLinear

    times, values = hist([0.0], [2.0])
    hold = DampedLinear(damping=0.0).extrapolate(times, values, 2)
    full = DampedLinear(damping=1.0).extrapolate(times, values, 2)
    half = DampedLinear(damping=0.5).extrapolate(times, values, 2)
    np.testing.assert_allclose(hold, [2.0])   # = last value
    np.testing.assert_allclose(full, [4.0])   # = linear extrapolation
    np.testing.assert_allclose(half, [3.0])   # midway


def test_damped_linear_single_point_holds():
    from repro.core import DampedLinear

    out = DampedLinear().extrapolate([0], [np.array([5.0])], 2)
    np.testing.assert_allclose(out, [5.0])


def test_damped_linear_validation():
    from repro.core import DampedLinear

    with pytest.raises(ValueError):
        DampedLinear(damping=1.5)
    with pytest.raises(ValueError):
        DampedLinear(damping=-0.1)


def test_damped_linear_more_robust_to_noise_than_linear():
    """On a noisy constant signal, full linear extrapolation amplifies
    the noise (variance x5 for the last-two-points slope); damping
    shrinks it back toward the hold."""
    from repro.core import DampedLinear, LinearExtrapolation

    rng = np.random.default_rng(0)
    signal = 1.0 + 0.1 * rng.normal(size=200)
    lin_err, damp_err = [], []
    for t in range(2, 199):
        hist_t = [t - 2, t - 1]
        vals = [np.array([signal[t - 2]]), np.array([signal[t - 1]])]
        lin_err.append(abs(LinearExtrapolation().extrapolate(hist_t, vals, t)[0] - signal[t]))
        damp_err.append(abs(DampedLinear(0.3).extrapolate(hist_t, vals, t)[0] - signal[t]))
    assert np.mean(damp_err) < np.mean(lin_err)
