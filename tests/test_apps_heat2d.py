"""Tests for the 2-D heat-equation application."""

import numpy as np
import pytest

from repro.apps import HeatEquation2D
from repro.core import run_program
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs


def make_cluster(p, latency=0.0, capacity=1e6):
    return Cluster(
        uniform_specs(p, capacity=capacity),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def make_program(rows=24, cols=16, p=3, iterations=8, **kw):
    rng = np.random.default_rng(1)
    initial = rng.uniform(0.0, 1.0, size=(rows, cols))
    kw.setdefault("threshold", 0.0)
    return HeatEquation2D(initial, [1e6] * p, iterations, r=0.2, boundary=0.5, **kw)


def test_validation():
    with pytest.raises(ValueError):
        HeatEquation2D(np.zeros(10), [1.0], 5)  # 1-D field
    with pytest.raises(ValueError):
        HeatEquation2D(np.zeros((2, 4)), [1.0, 1.0, 1.0], 5)  # too few rows
    with pytest.raises(ValueError):
        HeatEquation2D(np.zeros((8, 4)), [1.0, 1.0], 5, r=0.3)  # unstable r
    from repro.partition import cyclic_partition

    with pytest.raises(ValueError):
        HeatEquation2D(np.zeros((8, 4)), [1.0, 1.0], 5,
                       partition=cyclic_partition(8, 2))


def test_topology_neighbors_only():
    prog = make_program(p=4)
    assert prog.needed(0) == frozenset({1})
    assert prog.needed(2) == frozenset({1, 3})
    assert prog.needed(3) == frozenset({2})


def test_fw0_matches_reference():
    prog = make_program()
    result = run_program(prog, make_cluster(3, latency=0.05), fw=0)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-12)


def test_fw1_theta_zero_exact():
    prog = make_program()
    result = run_program(prog, make_cluster(3, latency=0.3), fw=1)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-10)


def test_incremental_row_correction_exact():
    prog = make_program(p=2)
    inputs = {0: prog.initial_block(0), 1: prog.initial_block(1)}
    wrong = inputs[1].copy()
    wrong[0, :] += 0.3  # corrupt the ghost row rank 0 reads
    tainted = dict(inputs)
    tainted[1] = wrong
    bad_next = prog.compute(0, tainted, 0)
    fixed, ops = prog.correct(0, bad_next, tainted, 1, wrong, inputs[1], 0)
    clean = prog.compute(0, inputs, 0)
    np.testing.assert_allclose(fixed, clean, atol=1e-13)
    assert ops > 0


def test_check_only_consumed_ghost_row():
    prog = make_program(p=2)
    spec = prog.initial_block(1).copy()
    actual = prog.initial_block(1)
    spec[-1, :] += 10.0  # bottom row of strip 1: NOT read by rank 0
    assert prog.check(0, 1, spec, actual, prog.initial_block(0)) == 0.0
    spec2 = actual.copy()
    spec2[0, :] += 0.25  # top row: read by rank 0
    assert prog.check(0, 1, spec2, actual, prog.initial_block(0)) == pytest.approx(0.25)


def test_speculate_extrapolates_only_ghost_row():
    prog = make_program(p=2)
    v0 = prog.initial_block(1)
    v1 = v0 + 1.0
    spec = prog.speculate(0, 1, [0, 1], [v0, v1], 2)
    # ghost row (top) linearly extrapolated: v0+2
    np.testing.assert_allclose(spec[0, :], v0[0, :] + 2.0)
    # other rows held at the latest value
    np.testing.assert_allclose(spec[1:, :], v1[1:, :])


def test_diffusion_towards_boundary_value():
    prog = make_program(rows=12, cols=8, p=2, iterations=800)
    result = run_program(prog, make_cluster(2), fw=1)
    grid = prog.gather(result.final_blocks)
    # long-run: everything relaxes to the uniform boundary temperature
    np.testing.assert_allclose(grid, 0.5, atol=0.02)


def test_heterogeneous_row_allocation():
    rng = np.random.default_rng(0)
    prog = HeatEquation2D(rng.uniform(size=(30, 6)), [3e6, 1e6], 4)
    assert prog.partition.counts == (23, 7)


def test_cost_model():
    prog = make_program(rows=24, cols=16, p=3)
    n_rows = len(prog.partition.indices(0))
    assert prog.compute_ops(0) == pytest.approx(10.0 * n_rows * 16)
    assert prog.speculate_ops(0, 1) == pytest.approx(64.0)
    assert prog.check_ops(0, 1) == pytest.approx(32.0)
    assert prog.block_nbytes(0) == 8 * n_rows * 16 + 64
