"""Tests for the adaptive forward-window driver."""

import numpy as np
import pytest

from repro.core import ZeroOrderHold
from repro.core.adaptive import AdaptivePolicy, AdaptiveSpeculativeDriver
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement, RandomDrift


def make_cluster(p, latency, capacity=1000.0):
    return Cluster(
        uniform_specs(p, capacity=capacity),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def constant_prog(iterations=24, **kw):
    kw.setdefault("threshold", 0.0)
    kw.setdefault("speculator", ZeroOrderHold())
    return CoupledIncrement(
        nprocs=2, iterations=iterations, coupling=0.0, rates=[0.0, 0.0],
        ops_per_compute=1000.0, **kw,
    )


def test_policy_validation():
    with pytest.raises(ValueError):
        AdaptivePolicy(epoch=0)
    with pytest.raises(ValueError):
        AdaptivePolicy(min_fw=3, max_fw=2)
    with pytest.raises(ValueError):
        AdaptivePolicy(reject_low=0.5, reject_high=0.2)
    with pytest.raises(ValueError):
        AdaptivePolicy(wait_fraction=-0.1)


def test_initial_fw_must_lie_in_bounds():
    prog = constant_prog(iterations=4)
    with pytest.raises(ValueError):
        AdaptiveSpeculativeDriver(
            prog, make_cluster(2, 0.1), fw=5, policy=AdaptivePolicy(max_fw=3)
        )


def test_window_widens_under_large_delays():
    """comm = 3x compute: FW=1 leaves waiting, so the controller widens."""
    prog = constant_prog(iterations=32)
    driver = AdaptiveSpeculativeDriver(
        prog, make_cluster(2, latency=3.0), fw=1,
        policy=AdaptivePolicy(epoch=4, max_fw=4),
    )
    result = driver.run()
    assert all(fw >= 2 for fw in driver.final_windows())
    # And widening actually helped relative to a static FW=1 run.
    from repro.core import run_program

    static = run_program(constant_prog(iterations=32), make_cluster(2, 3.0), fw=1)
    assert result.makespan < static.makespan


def test_window_shrinks_when_speculation_always_wrong():
    """Hostile dynamics: the controller backs down toward blocking."""
    prog = RandomDrift(nprocs=2, iterations=32, coupling=0.0, threshold=0.0,
                       ops_per_compute=1000.0)
    driver = AdaptiveSpeculativeDriver(
        prog, make_cluster(2, latency=2.0), fw=3,
        policy=AdaptivePolicy(epoch=4, min_fw=0, max_fw=4),
    )
    driver.run()
    assert all(fw < 3 for fw in driver.final_windows())


def test_window_stable_when_masking_complete():
    """comm < compute and perfect speculation: FW=1 suffices, no drift."""
    prog = constant_prog(iterations=24)
    driver = AdaptiveSpeculativeDriver(
        prog, make_cluster(2, latency=0.5), fw=1,
        policy=AdaptivePolicy(epoch=4, max_fw=4),
    )
    driver.run()
    assert driver.final_windows() == [1, 1]


def test_history_records_decisions():
    prog = constant_prog(iterations=32)
    driver = AdaptiveSpeculativeDriver(
        prog, make_cluster(2, latency=3.0), fw=1,
        policy=AdaptivePolicy(epoch=4, max_fw=3),
    )
    driver.run()
    for history in driver.fw_history:
        assert history[0] == (0, 1)
        iters = [it for it, _ in history]
        assert iters == sorted(iters)
        # Each recorded step changes the window by exactly 1.
        fws = [fw for _, fw in history]
        assert all(abs(b - a) == 1 for a, b in zip(fws, fws[1:]))


def test_adaptive_results_still_correct():
    """Adaptation must not corrupt the numerics (theta=0, FW<=1 path)."""
    prog = CoupledIncrement(nprocs=3, iterations=16, coupling=0.2,
                            threshold=0.0, ops_per_compute=1000.0)
    driver = AdaptiveSpeculativeDriver(
        prog, make_cluster(3, latency=0.2), fw=1,
        policy=AdaptivePolicy(epoch=4, max_fw=1),  # cap: stays exact
    )
    result = driver.run()
    ref = prog.reference_run()
    for rank, block in result.final_blocks.items():
        np.testing.assert_allclose(block, ref[rank], atol=1e-9)
