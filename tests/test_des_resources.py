"""Unit tests for Store, PriorityStore and Resource."""

import pytest

from repro.des import Environment, PriorityStore, Resource, SimulationError, Store


def run(env, gen):
    p = env.process(gen)
    env.run()
    return p.value


def test_store_put_then_get_fifo():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put("a")
        yield store.put("b")
        first = yield store.get()
        second = yield store.get()
        return (first, second)

    assert run(env, proc(env)) == ("a", "b")


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (env.now, item)

    def producer(env):
        yield env.timeout(5)
        yield store.put("late")

    c = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert c.value == (5, "late")


def test_store_filtered_get_skips_nonmatching():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put(("from", 1))
        yield store.put(("from", 2))
        got = yield store.get(filter=lambda m: m[1] == 2)
        return got

    assert run(env, proc(env)) == ("from", 2)
    assert list(store.items) == [("from", 1)]


def test_store_filtered_get_blocks_until_match():
    env = Environment()
    store = Store(env)

    def consumer(env):
        got = yield store.get(filter=lambda m: m == "wanted")
        return (env.now, got)

    def producer(env):
        yield store.put("other")
        yield env.timeout(3)
        yield store.put("wanted")

    c = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert c.value == (3, "wanted")
    assert list(store.items) == ["other"]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put(1)
        log.append(("stored-1", env.now))
        yield store.put(2)
        log.append(("stored-2", env.now))

    def consumer(env):
        yield env.timeout(4)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("stored-1", 0) in log
    assert ("stored-2", 4) in log


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_peek_and_count():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put(1)
        yield store.put(2)
        yield store.put(3)

    env.process(proc(env))
    env.run()
    assert store.peek() == 1
    assert store.peek(filter=lambda x: x > 1) == 2
    assert store.count() == 3
    assert store.count(filter=lambda x: x % 2 == 1) == 2
    assert len(store) == 3


def test_store_peek_empty_returns_none():
    env = Environment()
    store = Store(env)
    assert store.peek() is None
    assert store.peek(filter=lambda x: True) is None


def test_store_get_cancel():
    env = Environment()
    store = Store(env)

    def proc(env):
        req = store.get()
        req.cancel()
        yield env.timeout(1)
        yield store.put("x")
        yield env.timeout(1)
        return store.count()

    # the cancelled get must not consume the item
    assert run(env, proc(env)) == 1


def test_multiple_consumers_fifo_service():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(env):
        yield env.timeout(1)
        for i in range(3):
            yield store.put(i)

    for tag in "abc":
        env.process(consumer(env, tag))
    env.process(producer(env))
    env.run()
    assert got == [("a", 0), ("b", 1), ("c", 2)]


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)

    def proc(env):
        for x in (5, 1, 3):
            yield store.put(x)
        out = []
        for _ in range(3):
            item = yield store.get()
            out.append(item)
        return out

    assert run(env, proc(env)) == [1, 3, 5]


def test_priority_store_rejects_filters():
    env = Environment()
    store = PriorityStore(env)
    with pytest.raises(SimulationError):
        env.process(iter([store.get(filter=lambda x: True)]))
        env.run()


def test_priority_store_peek_len():
    env = Environment()
    store = PriorityStore(env)

    def proc(env):
        yield store.put(9)
        yield store.put(2)

    env.process(proc(env))
    env.run()
    assert store.peek() == 2
    assert len(store) == 2
    assert store.count() == 2


def test_resource_mutual_exclusion():
    env = Environment()
    bus = Resource(env, capacity=1)
    spans = []

    def user(env, tag, hold):
        req = bus.request()
        yield req
        start = env.now
        yield env.timeout(hold)
        bus.release(req)
        spans.append((tag, start, env.now))

    env.process(user(env, "a", 3))
    env.process(user(env, "b", 2))
    env.run()
    # b must start exactly when a releases
    assert spans == [("a", 0, 3), ("b", 3, 5)]


def test_resource_capacity_two_overlaps():
    env = Environment()
    r = Resource(env, capacity=2)
    starts = {}

    def user(env, tag):
        req = r.request()
        yield req
        starts[tag] = env.now
        yield env.timeout(5)
        r.release(req)

    for tag in ("a", "b", "c"):
        env.process(user(env, tag))
    env.run()
    assert starts["a"] == 0 and starts["b"] == 0 and starts["c"] == 5


def test_resource_release_unheld_rejected():
    env = Environment()
    r = Resource(env)

    def proc(env):
        req = r.request()
        yield req
        r.release(req)
        r.release(req)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_counters():
    env = Environment()
    r = Resource(env, capacity=1)

    def holder(env):
        req = r.request()
        yield req
        yield env.timeout(10)
        r.release(req)

    def waiter(env):
        yield env.timeout(1)
        req = r.request()
        yield req
        r.release(req)

    env.process(holder(env))
    env.process(waiter(env))
    env.run(until=2)
    assert r.in_use == 1
    assert r.queued == 1
