"""Unit + property tests for capacity-proportional partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    Partition,
    block_partition,
    cyclic_partition,
    proportional_counts,
    proportional_partition,
)


def test_counts_sum_to_n():
    assert sum(proportional_counts(1000, [10, 5, 1])) == 1000


def test_counts_proportional_homogeneous():
    assert proportional_counts(100, [1, 1, 1, 1]) == [25, 25, 25, 25]


def test_counts_exact_ratios():
    assert proportional_counts(160, [3.0, 1.0]) == [120, 40]


def test_counts_largest_remainder_tie_break_by_order():
    # shares = 1.5, 1.5 -> one leftover goes to processor 0
    assert proportional_counts(3, [1.0, 1.0]) == [2, 1]


def test_counts_zero_items():
    assert proportional_counts(0, [2.0, 1.0]) == [0, 0]


def test_counts_rejects_bad_input():
    with pytest.raises(ValueError):
        proportional_counts(-1, [1.0])
    with pytest.raises(ValueError):
        proportional_counts(10, [])
    with pytest.raises(ValueError):
        proportional_counts(10, [1.0, 0.0])
    with pytest.raises(ValueError):
        proportional_counts(10, [1.0, -2.0])


def test_counts_within_one_of_ideal_share():
    caps = [10, 9.4, 8.8, 8.2, 7.6, 7.0, 6.4, 5.8]
    n = 1000
    counts = proportional_counts(n, caps)
    shares = [n * c / sum(caps) for c in caps]
    for count, share in zip(counts, shares):
        assert abs(count - share) < 1.0


@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=5000),
    caps=st.lists(st.floats(min_value=0.01, max_value=100.0, allow_nan=False), min_size=1, max_size=32),
)
def test_property_counts_complete_and_bounded(n, caps):
    counts = proportional_counts(n, caps)
    assert sum(counts) == n
    assert all(c >= 0 for c in counts)
    total = sum(caps)
    for count, cap in zip(counts, caps):
        assert abs(count - n * cap / total) < 1.0 + 1e-9


def test_partition_disjoint_cover():
    part = proportional_partition(100, [2.0, 1.0, 1.0])
    allidx = np.concatenate(part.assignments)
    assert sorted(allidx.tolist()) == list(range(100))
    assert part.counts == (50, 25, 25)
    assert part.nprocs == 3


def test_partition_owner_map():
    part = proportional_partition(10, [1.0, 1.0])
    owner = part.owner()
    assert owner.tolist() == [0] * 5 + [1] * 5


def test_partition_indices_accessor():
    part = proportional_partition(6, [1.0, 2.0])
    np.testing.assert_array_equal(part.indices(0), [0, 1])
    np.testing.assert_array_equal(part.indices(1), [2, 3, 4, 5])


def test_partition_iterable():
    part = block_partition(4, 2)
    blocks = list(part)
    assert len(blocks) == 2


def test_partition_validates_cover():
    with pytest.raises(ValueError):
        Partition(n=4, assignments=(np.array([0, 1]), np.array([2])))  # missing 3
    with pytest.raises(ValueError):
        Partition(n=3, assignments=(np.array([0, 1]), np.array([1, 2])))  # overlap
    with pytest.raises(ValueError):
        Partition(n=2, assignments=(np.array([0, 5]),))  # out of range


def test_block_partition_equal_sizes():
    part = block_partition(12, 4)
    assert part.counts == (3, 3, 3, 3)


def test_block_partition_uneven():
    part = block_partition(10, 3)
    assert sum(part.counts) == 10
    assert max(part.counts) - min(part.counts) <= 1


def test_cyclic_partition_round_robin():
    part = cyclic_partition(7, 3)
    np.testing.assert_array_equal(part.indices(0), [0, 3, 6])
    np.testing.assert_array_equal(part.indices(1), [1, 4])
    np.testing.assert_array_equal(part.indices(2), [2, 5])


def test_partition_p_validation():
    with pytest.raises(ValueError):
        block_partition(10, 0)
    with pytest.raises(ValueError):
        cyclic_partition(10, 0)


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=500),
    p=st.integers(min_value=1, max_value=16),
)
def test_property_cyclic_partition_cover(n, p):
    part = cyclic_partition(n, p)
    allidx = np.concatenate([a for a in part.assignments]) if n else np.empty(0)
    assert sorted(allidx.tolist()) == list(range(n))


def test_paper_linear_gradient_partition():
    """The Section-4 platform: 16 processors, M_1 = 10 x M_16, linear."""
    caps = [10 - 9 * i / 15 for i in range(16)]
    part = proportional_partition(1000, caps)
    counts = part.counts
    assert sum(counts) == 1000
    # Fastest processor gets ~10x the slowest's share.
    assert counts[0] / counts[15] == pytest.approx(10.0, rel=0.1)
    # Monotone non-increasing allocation.
    assert all(a >= b for a, b in zip(counts, counts[1:]))
