"""Property tests for the backward-window :class:`HistoryRing`.

Two styles on purpose: hand-rolled seeded randomization checks the
ring against a reference model — a plain list trimmed with
``del ref[:-cap]``, exactly the idiom the ring replaced in the pipe
worker — across many random append sequences, and a hypothesis
property pins the ``lookup`` contract at the trim boundary, where the
shrinker finds off-by-one capacities faster than fixed seeds do.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import HistoryRing, OutOfOrderArrival


def random_sequences(seed, n_cases=200):
    rng = np.random.default_rng(seed)
    for _ in range(n_cases):
        cap = int(rng.integers(1, 8))
        n = int(rng.integers(0, 30))
        # Strictly increasing times with random gaps (skipped
        # iterations model messages the transport delivered late
        # enough to be pruned by the protocol).
        times = np.cumsum(rng.integers(1, 4, size=n)).tolist()
        yield cap, [(int(t), float(rng.normal())) for t in times]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ring_matches_list_trim_reference_model(seed):
    for cap, samples in random_sequences(seed):
        ring = HistoryRing(cap)
        ref = []
        for t, v in samples:
            ring.append(t, v)
            ref.append((t, v))
            del ref[:-cap]  # the replaced copy-pasted trim idiom
            assert list(ring) == ref
            assert ring.times() == [t_ for t_, _ in ref]
            assert ring.values() == [v_ for _, v_ in ref]
            assert ring.series() == (ring.times(), ring.values())
            assert len(ring) == len(ref) <= cap
            assert ring.latest() == ref[-1]
            assert ring.latest_time() == ref[-1][0]


@pytest.mark.parametrize("seed", [3, 4])
def test_ring_times_strictly_increasing_and_newest_kept(seed):
    for cap, samples in random_sequences(seed):
        ring = HistoryRing(cap)
        for t, v in samples:
            ring.append(t, v)
        times = ring.times()
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        if samples:
            # Always the *newest* entries survive trimming.
            assert times == [t for t, _ in samples][-cap:]


@pytest.mark.parametrize("seed", [5, 6])
def test_ring_lookup(seed):
    for cap, samples in random_sequences(seed):
        ring = HistoryRing(cap)
        held = {}
        for t, v in samples:
            ring.append(t, v)
            held[t] = v
        kept = ring.times()
        for t in range(0, (kept[-1] + 2) if kept else 2):
            expected = held[t] if t in kept else None
            assert ring.lookup(t) == expected


def test_out_of_order_append_raises():
    ring = HistoryRing(4, initial=(3, "x"))
    with pytest.raises(OutOfOrderArrival):
        ring.append(3, "dup")
    with pytest.raises(OutOfOrderArrival):
        ring.append(1, "past")
    ring.append(4, "ok")  # still usable after the rejected appends
    assert ring.times() == [3, 4]


@given(
    cap=st.integers(min_value=1, max_value=8),
    gaps=st.lists(st.integers(min_value=1, max_value=3), max_size=24),
)
@settings(max_examples=200, deadline=None)
def test_lookup_partitions_times_at_the_trim_boundary(cap, gaps):
    """Every time ever appended is either retained (lookup returns its
    value) or trimmed (lookup returns None), split exactly at the
    oldest surviving time — and times never appended are None on both
    sides of the boundary."""
    ring = HistoryRing(cap)
    appended = {}
    t = 0
    for gap in gaps:
        t += gap
        ring.append(t, f"v{t}")
        appended[t] = f"v{t}"
    kept = ring.times()
    assert kept == sorted(appended)[-cap:]
    boundary = kept[0] if kept else 0
    for past in appended:
        if past >= boundary:
            assert ring.lookup(past) == appended[past]
        else:
            assert ring.lookup(past) is None  # trimmed, not misfiled
    # Interior gaps (skipped iterations) and the future miss cleanly.
    for probe in range(0, t + 2):
        if probe not in appended:
            assert ring.lookup(probe) is None


def test_ordering_enforced_across_trim_boundary():
    """A time older than everything *retained* but newer than what was
    trimmed must still be rejected: the invariant is against the
    newest-ever sample, not just the survivors."""
    ring = HistoryRing(2)
    for t in (1, 2, 3, 4):
        ring.append(t, t)
    assert ring.times() == [3, 4]
    with pytest.raises(OutOfOrderArrival):
        ring.append(4, "repeat")


def test_constructor_validation_and_initial():
    with pytest.raises(ValueError):
        HistoryRing(0)
    ring = HistoryRing(3, initial=(0, "seed"))
    assert ring.capacity == 3
    assert list(ring) == [(0, "seed")]
