"""Tests for the experiment harness (tables, toys, experiments, registry)."""

import numpy as np
import pytest

from repro.harness import (
    EXPERIMENTS,
    fig2_timelines,
    fig4_forward_window,
    fig5_model_speedup,
    fig6_error_sensitivity,
    fig8_nbody_speedup,
    fig9_model_vs_measured,
    format_table,
    get_experiment,
    run_nbody,
    table2_phase_times,
    table3_threshold_sweep,
)
from repro.harness.toys import ConstantProgram, JumpyProgram

#: Miniature configuration so harness tests stay fast.
FAST = {"n_particles": 120, "iterations": 5}


# ---------------------------------------------------------------- formatting
def test_format_table_basic():
    out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert "2.500" in out and "0.250" in out


def test_format_table_row_width_check():
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_format_table_empty_rows():
    out = format_table(["x", "y"], [])
    assert "x" in out


# --------------------------------------------------------------------- toys
def test_constant_program_state_never_changes():
    prog = ConstantProgram(nprocs=2, iterations=3)
    b = prog.initial_block(0)
    nxt = prog.compute(0, {0: b, 1: prog.initial_block(1)}, 0)
    np.testing.assert_array_equal(nxt, b)


def test_jumpy_program_defeats_extrapolation():
    prog = JumpyProgram(nprocs=2, iterations=3)
    inputs = {0: prog.initial_block(0), 1: prog.initial_block(1)}
    a = prog.compute(0, inputs, 0)
    b = prog.compute(0, inputs, 1)
    assert not np.allclose(a, b)


def test_toy_cost_model():
    prog = ConstantProgram(nprocs=2, iterations=3, ops_per_compute=100.0,
                           spec_cost_fraction=0.1, check_cost_fraction=0.2)
    assert prog.compute_ops(0) == 100.0
    assert prog.speculate_ops(0, 1) == pytest.approx(10.0)
    assert prog.check_ops(0, 1) == pytest.approx(20.0)
    assert prog.block_nbytes(0) == 64


# ------------------------------------------------------------------ registry
def test_registry_contains_all_artifacts():
    assert set(EXPERIMENTS) == {
        "fig2", "fig4", "fig5", "fig6", "fig8", "table2", "table3", "fig9"
    }


def test_get_experiment_normalises_names():
    assert get_experiment("FIG8") is EXPERIMENTS["fig8"]
    assert get_experiment("Table_2") is EXPERIMENTS["table2"]
    with pytest.raises(KeyError):
        get_experiment("fig99")


# --------------------------------------------------------------- experiments
def test_fig2_ordering():
    result = fig2_timelines(iterations=3)
    times = {label: t for label, t, _ in result.rows}
    assert times["(b) speculation, all good"] < times["(a) no speculation (FW=0)"]
    assert times["(a) no speculation (FW=0)"] < times["(c) speculation, all bad"]
    assert "legend" in result.text


def test_fig4_monotone_in_window():
    result = fig4_forward_window(iterations=5)
    makespans = [t for _, t, _ in result.rows]
    assert makespans[0] > makespans[1] > makespans[2]


def test_fig5_has_16_rows():
    result = fig5_model_speedup()
    assert len(result.rows) == 16
    assert result.rows[0][1] == pytest.approx(1.0)


def test_fig6_monotone_decreasing():
    result = fig6_error_sensitivity(k_values=np.linspace(0, 0.2, 5))
    spec = [r[1] for r in result.rows]
    assert all(a >= b for a, b in zip(spec, spec[1:]))
    assert 0 < result.extra["crossover_k"] <= 1


def test_run_nbody_fast_config():
    prog, res = run_nbody(2, 1, config=FAST)
    assert res.nprocs == 2
    assert res.iterations == FAST["iterations"]
    assert prog.system.n == FAST["n_particles"]


def test_fig8_small_config():
    result = fig8_nbody_speedup(ps=(1, 2, 4), fws=(0, 1), config=FAST)
    assert [int(r[0]) for r in result.rows] == [1, 2, 4]
    # p=1 rows are exactly 1.0; all speedups positive and below max.
    assert result.rows[0][1] == 1.0
    for row in result.rows:
        assert all(s > 0 for s in row[1:])
        assert row[1] <= row[-1] + 1e-9


def test_table2_small_config():
    result = table2_phase_times(p=4, fws=(0, 1), config=FAST)
    rows = {r[0]: r for r in result.rows}
    assert rows[0][3] == 0.0  # no speculation time at FW=0
    assert rows[1][3] > 0.0
    assert rows[1][2] <= rows[0][2] + 1e-9  # comm shrinks


def test_table3_small_config():
    result = table3_threshold_sweep(thetas=(0.05, 0.005), p=4, config=FAST)
    assert len(result.rows) == 2
    loose, tight = result.rows
    assert tight[1] >= loose[1]  # more rejections at tighter theta


def test_fig9_small_config():
    result = fig9_model_vs_measured(ps=(1, 2, 4), config=FAST)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row[3] < 50.0 and row[6] < 50.0  # deviations sane
    assert result.extra["k"] >= 0.0
