"""Tests for the Section-4 performance model (Eq. 3-9, Fig. 5, Fig. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import (
    LinearCommTime,
    ModelParams,
    PerformanceModel,
    section4_params,
)


def simple_params(**overrides):
    defaults = dict(
        n=100,
        capacities=(100.0, 50.0),
        f_comp=10.0,
        f_spec=0.1,
        f_check=0.2,
        t_comm=LinearCommTime(slope=1.0),
        k=0.0,
    )
    defaults.update(overrides)
    return ModelParams(**defaults)


# --------------------------------------------------------------- LinearCommTime
def test_linear_comm_time_zero_for_p1():
    t = LinearCommTime(slope=2.0, base=1.0)
    assert t(1) == 0.0
    assert t(2) == 3.0
    assert t(4) == 7.0


def test_linear_comm_time_validation():
    with pytest.raises(ValueError):
        LinearCommTime(slope=-1.0)
    with pytest.raises(ValueError):
        LinearCommTime(slope=1.0)(0)


# ------------------------------------------------------------------ ModelParams
def test_params_validation():
    with pytest.raises(ValueError):
        simple_params(n=0)
    with pytest.raises(ValueError):
        simple_params(capacities=())
    with pytest.raises(ValueError):
        simple_params(capacities=(100.0, -1.0))
    with pytest.raises(ValueError):
        simple_params(capacities=(50.0, 100.0))  # not fastest-first
    with pytest.raises(ValueError):
        simple_params(k=1.5)
    with pytest.raises(ValueError):
        simple_params(f_comp=-1.0)


# --------------------------------------------------------------------- Eq. 3-6
def test_eq3_serial_time():
    m = PerformanceModel(simple_params())
    # N * f_comp / M_1 = 100*10/100
    assert m.t_serial() == pytest.approx(10.0)


def test_allocation_proportional():
    m = PerformanceModel(simple_params())
    n1, n2 = m.allocation(2)
    assert n1 + n2 == pytest.approx(100.0)
    assert n1 / n2 == pytest.approx(2.0)


def test_allocation_integer_mode():
    m = PerformanceModel(simple_params(integer_counts=True))
    counts = m.allocation(2)
    assert counts == [round(c) for c in counts]
    assert sum(counts) == 100


def test_allocation_bounds():
    m = PerformanceModel(simple_params())
    with pytest.raises(ValueError):
        m.allocation(0)
    with pytest.raises(ValueError):
        m.allocation(3)


def test_eq6_nospec_time():
    m = PerformanceModel(simple_params())
    # balanced comp: each rank takes N f_comp / sum(M) = 1000/150 = 6.667
    # plus t_comm(2) = 1.0
    assert m.t_nospec(2) == pytest.approx(100 * 10 / 150 + 1.0)


def test_eq6_p1_reduces_to_serial():
    m = PerformanceModel(simple_params())
    assert m.t_nospec(1) == m.t_serial()
    assert m.t_spec(1) == m.t_serial()


# --------------------------------------------------------------------- Eq. 7-9
def test_eq8_overlap_comm_bound():
    """When comm dominates, iteration time = comm + check + recompute."""
    params = simple_params(t_comm=LinearCommTime(slope=100.0), k=0.0)
    m = PerformanceModel(params)
    counts = m.allocation(2)
    # overlap term = t_comm = 100; check on rank i = (N - N_i) f_check / M_i
    expected = max(
        100.0 + (100 - counts[i]) * 0.2 / params.capacities[i] for i in range(2)
    )
    assert m.t_spec(2) == pytest.approx(expected)


def test_eq8_overlap_compute_bound():
    """When compute dominates, comm disappears from the spec time."""
    params = simple_params(t_comm=LinearCommTime(slope=1e-9))
    m = PerformanceModel(params)
    counts = m.allocation(2)
    expected = max(
        ((100 - counts[i]) * 0.1 + counts[i] * 10.0 + (100 - counts[i]) * 0.2)
        / params.capacities[i]
        for i in range(2)
    )
    assert m.t_spec(2) == pytest.approx(expected)


def test_eq8_recompute_penalty_scales_with_k():
    base = PerformanceModel(simple_params(k=0.0)).t_spec(2)
    loaded = PerformanceModel(simple_params(k=0.5)).t_spec(2)
    counts = PerformanceModel(simple_params()).allocation(2)
    # penalty on the slowest-finishing rank
    assert loaded > base
    assert loaded - base <= 0.5 * max(
        c * 10.0 / m for c, m in zip(counts, (100.0, 50.0))
    ) + 1e-9


def test_speedup_max_formula():
    m = PerformanceModel(simple_params())
    assert m.speedup_max(2) == pytest.approx(150.0 / 100.0)


def test_speedup_monotone_in_k():
    ks = np.linspace(0, 0.5, 11)
    speedups = [
        PerformanceModel(simple_params(k=float(k))).speedup_spec(2) for k in ks
    ]
    assert all(a >= b - 1e-12 for a, b in zip(speedups, speedups[1:]))


# ------------------------------------------------------------- Section 4 study
def test_section4_fig5_shape():
    """Fig. 5: spec beats no-spec at large p; no-spec rolls over."""
    params = section4_params(k=0.02)
    m = PerformanceModel(params)
    curves = m.speedup_curves()
    spec = curves["speculation"]
    nospec = curves["no_speculation"]
    maximum = curves["maximum"]

    # Little difference at small p (communication negligible).
    assert spec[1] / nospec[1] < 1.10
    # Significant benefit at p=16 (paper: ~25%; ours is larger because
    # the "total" allocation idles processors whose checking overhead
    # exceeds their compute contribution -- see ModelParams docs).
    gain16 = spec[15] / nospec[15] - 1.0
    assert 0.10 < gain16 < 0.80
    # No-speculation curve decreases somewhere beyond p ~ 10.
    tail = nospec[9:]
    assert any(b < a for a, b in zip(tail, tail[1:]))
    # The speculation *advantage* grows with p (communication delays
    # matter more, so there is more to mask).
    gain = [s / n for s, n in zip(spec, nospec)]
    assert gain[15] > gain[7] > gain[3]
    # The speculative curve plateaus at large p rather than collapsing.
    assert spec[15] >= 0.75 * max(spec)
    # All speedups below the maximum attainable.
    assert all(s <= mx + 1e-9 for s, mx in zip(spec, maximum))
    assert all(s <= mx + 1e-9 for s, mx in zip(nospec, maximum))


def test_section4_fig6_shape():
    """Fig. 6: speculation wins for small k, loses for large k."""
    m = PerformanceModel(section4_params())
    data = m.error_sensitivity(8, k_values=np.linspace(0.0, 0.4, 21))
    spec = data["speculation"]
    nospec = data["no_speculation"][0]
    assert spec[0] > nospec  # k=0: clear win
    assert spec[-1] < nospec  # k=0.4: clear loss
    # Monotone decreasing in k.
    assert all(a >= b - 1e-12 for a, b in zip(spec, spec[1:]))


def test_section4_crossover_k_near_ten_percent():
    """Paper: 'speculation yields performance gain ... for errors less
    than 10%' on the 8-processor system."""
    m = PerformanceModel(section4_params())
    k_cross = m.crossover_k(8)
    assert 0.03 < k_cross < 0.30


def test_crossover_edge_cases():
    # Comm enormous and checking free: speculation wins even at k=1.
    params = simple_params(t_comm=LinearCommTime(slope=1e6), f_check=0.0)
    assert PerformanceModel(params).crossover_k(2) == 1.0
    # Comm enormous but checking costly: crossover just below 1
    # (at k=1 the whole compute phase is redone *and* checking is paid).
    params = simple_params(t_comm=LinearCommTime(slope=1e6))
    assert 0.9 < PerformanceModel(params).crossover_k(2) < 1.0
    # Comm zero and overheads positive: speculation never wins -> 0.0
    params = simple_params(t_comm=LinearCommTime(slope=0.0))
    assert PerformanceModel(params).crossover_k(2) == 0.0


@settings(max_examples=50, deadline=None)
@given(
    p=st.integers(2, 16),
    k=st.floats(0.0, 0.3),
)
def test_property_speedups_bounded_by_maximum(p, k):
    m = PerformanceModel(section4_params(k=k))
    assert m.speedup_spec(p) <= m.speedup_max(p) + 1e-9
    assert m.speedup_nospec(p) <= m.speedup_max(p) + 1e-9


@settings(max_examples=50, deadline=None)
@given(p=st.integers(2, 16))
def test_property_zero_overhead_spec_never_slower(p):
    """With free speculation/checking and k=0, Eq. 8 <= Eq. 6 always."""
    params = section4_params(k=0.0)
    free = ModelParams(
        n=params.n,
        capacities=params.capacities,
        f_comp=params.f_comp,
        f_spec=0.0,
        f_check=0.0,
        t_comm=params.t_comm,
        k=0.0,
    )
    m = PerformanceModel(free)
    assert m.t_spec(p) <= m.t_nospec(p) + 1e-9
