"""Unit tests for generic error metrics."""

import numpy as np
import pytest

from repro.core import MaxAbsoluteError, MaxRelativeError, RmsError


def test_max_abs_error():
    m = MaxAbsoluteError()
    assert m.error(np.array([1.0, 2.0]), np.array([1.5, 2.0])) == 0.5
    assert m.error(np.array([1.0]), np.array([1.0])) == 0.0


def test_max_rel_error_scale_free():
    m = MaxRelativeError()
    e1 = m.error(np.array([110.0]), np.array([100.0]))
    e2 = m.error(np.array([1.10]), np.array([1.00]))
    assert e1 == pytest.approx(e2, rel=1e-9)
    assert e1 == pytest.approx(0.1)


def test_max_rel_error_eps_guards_zero():
    m = MaxRelativeError(eps=1e-6)
    assert np.isfinite(m.error(np.array([1.0]), np.array([0.0])))


def test_max_rel_error_eps_validation():
    with pytest.raises(ValueError):
        MaxRelativeError(eps=0)


def test_rms_error():
    m = RmsError()
    assert m.error(np.array([1.0, -1.0]), np.array([0.0, 0.0])) == pytest.approx(1.0)


def test_shape_mismatch_rejected():
    for m in (MaxAbsoluteError(), MaxRelativeError(), RmsError()):
        with pytest.raises(ValueError):
            m.error(np.zeros(3), np.zeros(4))


def test_empty_blocks_zero_error():
    for m in (MaxAbsoluteError(), MaxRelativeError(), RmsError()):
        assert m.error(np.zeros(0), np.zeros(0)) == 0.0


def test_errors_nonnegative():
    rng = np.random.default_rng(0)
    for m in (MaxAbsoluteError(), MaxRelativeError(), RmsError()):
        for _ in range(20):
            a, b = rng.normal(size=5), rng.normal(size=5)
            assert m.error(a, b) >= 0.0
