"""Tests for the Fig. 7 receive-driven driver and incremental programs."""

import numpy as np
import pytest

from repro.core import ReceiveDrivenDriver, run_program
from repro.apps import NBodyProgram
from repro.nbody import uniform_cube
from repro.netsim import ConstantLatency, DelayNetwork, StochasticLatency
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement


def make_cluster(p, latency=0.0, jitter=0.0, capacity=1e6):
    def factory(env):
        lat = ConstantLatency(latency)
        if jitter:
            return DelayNetwork(env, StochasticLatency(lat, sigma=jitter, seed=5))
        return DelayNetwork(env, lat)

    return Cluster(uniform_specs(p, capacity=capacity), network_factory=factory)


def nbody(n=36, p=3, iterations=5, **kw):
    system = uniform_cube(n, seed=2, softening=0.1)
    return NBodyProgram(system, [1e6] * p, iterations, dt=0.01, **kw)


def test_requires_incremental_program():
    prog = CoupledIncrement(nprocs=2, iterations=2)
    with pytest.raises(TypeError):
        ReceiveDrivenDriver(prog, make_cluster(2))


def test_cluster_size_must_match():
    prog = nbody(p=2)
    with pytest.raises(ValueError):
        ReceiveDrivenDriver(prog, make_cluster(3))


def test_incremental_decomposition_equals_compute():
    """begin/absorb/finish in any order == the monolithic compute."""
    prog = nbody(n=30, p=3)
    inputs = {r: prog.initial_block(r) for r in range(3)}
    expected = prog.compute(0, inputs, 0)
    for order in ([1, 2], [2, 1]):
        acc = prog.begin(0, inputs[0], 0)
        for k in order:
            acc = prog.absorb(0, acc, k, inputs[k], 0)
        got = prog.finish(0, acc, inputs[0], 0)
        np.testing.assert_allclose(got, expected, atol=1e-12)


def test_receive_driven_matches_serial_reference():
    prog = nbody()
    result = ReceiveDrivenDriver(prog, make_cluster(3, latency=0.2)).run()
    final = prog.gather(result.final_blocks)
    ref = prog.reference()
    np.testing.assert_allclose(final.pos, ref.pos, atol=1e-10)
    np.testing.assert_allclose(final.vel, ref.vel, atol=1e-10)


def test_receive_driven_matches_blocking_driver():
    prog1 = nbody()
    r1 = ReceiveDrivenDriver(prog1, make_cluster(3, latency=0.2)).run()
    prog2 = nbody()
    r2 = run_program(prog2, make_cluster(3, latency=0.2), fw=0)
    for rank in range(3):
        np.testing.assert_allclose(
            r1.final_blocks[rank], r2.final_blocks[rank], atol=1e-12
        )


def test_receive_driven_overlaps_staggered_arrivals():
    """With jittered arrivals, absorbing early messages while waiting
    for stragglers beats the all-then-compute baseline."""
    def run(driver_kind):
        prog = nbody(n=60, p=3, iterations=8)
        cluster = make_cluster(3, latency=0.8, jitter=1.0, capacity=2e5)
        if driver_kind == "recv":
            return ReceiveDrivenDriver(prog, cluster).run()
        return run_program(prog, cluster, fw=0)

    t_recv = run("recv").makespan
    t_block = run("block").makespan
    assert t_recv <= t_block + 1e-9


def test_receive_driven_cost_model_totals():
    """begin + absorbs + finish ops equal the monolithic compute_ops."""
    prog = nbody(n=40, p=4)
    for rank in range(4):
        total = prog.begin_ops(rank) + prog.finish_ops(rank) + sum(
            prog.absorb_ops(rank, k) for k in range(4) if k != rank
        )
        assert total == pytest.approx(prog.compute_ops(rank), rel=1e-12)


def test_receive_driven_stats_and_result_shape():
    prog = nbody(iterations=4)
    result = ReceiveDrivenDriver(prog, make_cluster(3, latency=0.1)).run()
    assert result.fw == 0
    assert result.iterations == 4
    for s in result.stats:
        assert s.iterations == 4
        assert s.spec_made == 0
        assert s.messages_sent == (4 - 1) * 2
