"""Tests for the speclint static-analysis pass (rules SPL001..SPL008).

Each rule is exercised twice: against a ``bad_*`` fixture that must
fire at known lines, and against the ``good_*`` fixtures that must stay
silent.  The fixtures live in ``tests/speclint_fixtures/`` and are
deliberately *not* collected by pytest (``python_files = test_*.py``)
nor linted by ruff (excluded in pyproject.toml): they exist only as
lint input.
"""

import json
import pathlib

import pytest

from repro.analysis import (
    RULES,
    Severity,
    all_rule_codes,
    collect_suppressions,
    iter_python_files,
    lint_paths,
    lint_source,
    render,
    render_json,
    render_text,
)
from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = pathlib.Path(__file__).resolve().parent / "speclint_fixtures"


def lint_fixture(name):
    path = FIXTURES / name
    return lint_source(path.read_text(), path=str(path))


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


# ------------------------------------------------------------ rule registry
def test_registry_has_all_rules():
    assert all_rule_codes() == [
        "SPL001", "SPL002", "SPL003", "SPL004",
        "SPL005", "SPL006", "SPL007", "SPL008",
    ]
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.summary
        assert rule.severity in (Severity.ERROR, Severity.WARNING)


# ------------------------------------------------------------ per-rule firing
def test_spl001_unawaited_simulation_calls():
    diags = lint_fixture("bad_spl001_unawaited.py")
    assert codes(diags) == ["SPL001"]
    assert sorted(d.line for d in diags) == [10, 11, 12]


def test_spl001_silent_on_driven_generators():
    src = (
        "def body(env, proc):\n"
        "    yield from proc.compute(1.0)\n"
        "    msg = yield from proc.recv(match=None)\n"
        "    yield env.timeout(2.0)\n"
        "    return msg\n"
    )
    assert lint_source(src) == []


def test_spl002_blocking_recv_in_spec_branch():
    diags = lint_fixture("bad_spl002_blocking_spec.py")
    assert codes(diags) == ["SPL002"]
    # Only the speculative arm fires; the blocking (else) arm is fine.
    assert [d.line for d in diags] == [7]


def test_spl003_nondeterminism_sources():
    diags = lint_fixture("bad_spl003_nondet.py")
    assert codes(diags) == ["SPL003"]
    assert sorted(d.line for d in diags) == [11, 12, 13, 14]
    # The injected-Generator function must not be flagged.
    assert all(d.line < 18 for d in diags)


def test_spl003_allows_default_rng():
    src = (
        "import numpy as np\n"
        "def make(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert lint_source(src) == []


def test_spl004_tag_discipline():
    diags = lint_fixture("bad_spl004_tags.py")
    assert codes(diags) == ["SPL004"]
    assert sorted(d.line for d in diags) == [8, 9, 10]


def test_spl005_payload_aliasing_is_warning():
    diags = lint_fixture("bad_spl005_aliasing.py")
    assert codes(diags) == ["SPL005"]
    assert all(d.severity is Severity.WARNING for d in diags)


def test_spl005_silent_when_copy_is_sent():
    src = (
        "VARS = 'vars'\n"
        "def body(proc, block, t):\n"
        "    proc.send(1, block.copy(), tag=(VARS, t))\n"
        "    yield from proc.compute(1.0)\n"
        "    block += 1.0\n"
    )
    assert lint_source(src) == []


def test_spl006_broad_and_bare_excepts():
    diags = lint_fixture("bad_spl006_broad_except.py")
    assert codes(diags) == ["SPL006"]
    assert sorted(d.line for d in diags) == [8, 12, 21]


def test_spl006_allows_reraise_and_traceback_preservation():
    src = (
        "import traceback\n"
        "def a(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:\n"
        "        raise\n"
        "def b(fn, log):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:\n"
        "        log(traceback.format_exc())\n"
        "        return None\n"
    )
    assert lint_source(src) == []


def test_spl007_impure_engine_fixture():
    diags = lint_fixture("bad_spl007_impure_engine.py")
    assert codes(diags) == ["SPL007"]
    assert sorted(d.line for d in diags) == [9, 10, 11, 12, 13, 25, 26]


def test_spl007_applies_to_engine_core_by_path():
    src = "import time\n"
    diags = lint_source(src, path="src/repro/engine/core.py", select=["SPL007"])
    assert codes(diags) == ["SPL007"]
    # Same source outside the engine core (and unmarked) is fine.
    assert lint_source(src, path="src/repro/harness.py", select=["SPL007"]) == []


def test_spl007_allows_type_checking_imports():
    src = (
        "# speclint: sans-io\n"
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    import os\n"
    )
    assert lint_source(src, select=["SPL007"]) == []


def test_spl008_partial_dispatch_fixture():
    diags = lint_fixture("bad_spl008_partial_dispatch.py")
    assert codes(diags) == ["SPL008"]
    # Each incomplete chain fires twice: missing I/O branches and the
    # missing notification default.
    assert sorted({d.line for d in diags}) == [21, 37]
    assert len(diags) == 4


def test_spl008_silent_on_observers_and_inspectors():
    # A notification-only observer (no Send branch) may be partial.
    src = (
        "def observe(effect, log):\n"
        "    kind = type(effect)\n"
        "    if kind is Speculated:\n"
        "        log('s')\n"
        "    elif kind is Verified:\n"
        "        log('v')\n"
    )
    assert lint_source(src, select=["SPL008"]) == []


def test_spl008_real_transports_are_exhaustive():
    diags = lint_paths([REPO_ROOT / "src" / "repro" / "engine"],
                       select=["SPL007", "SPL008"])
    assert diags == [], render_text(diags)


def test_good_fixture_is_clean():
    assert lint_fixture("good_protocol.py") == []


# ------------------------------------------------------------- suppressions
def test_line_and_file_suppressions():
    assert lint_fixture("good_suppressed.py") == []


def test_collect_suppressions_parses_both_directives():
    src = (
        "# speclint: disable-file=SPL003\n"
        "x = 1  # speclint: disable=SPL001,SPL004\n"
        "y = 2  # speclint: disable=all\n"
    )
    per_line, file_wide = collect_suppressions(src)
    assert file_wide == {"SPL003"}
    assert per_line[2] == {"SPL001", "SPL004"}
    # Codes are normalised to upper-case, including the wildcard.
    assert per_line[3] == {"ALL"}


def test_disable_all_wildcard_suppresses_everything():
    src = "def f(env):\n    env.timeout(1.0)  # speclint: disable=all\n"
    assert lint_source(src) == []


def test_multi_tool_directive_suppresses_every_named_id():
    # One line may carry several families' directives, and every
    # spelling accepts every family's codes — a single unified parse
    # (shared by all four tools) must honour the union of them.
    src = (
        "x = 1  # speclint: disable=SPL001  # spectaint: disable=SPT301\n"
        "y = 2  # specflow: disable=SPF201, SPP203, SPL004\n"
    )
    per_line, file_wide = collect_suppressions(src)
    assert per_line[1] == {"SPL001", "SPT301"}
    assert per_line[2] == {"SPF201", "SPP203", "SPL004"}
    assert file_wide == set()


def test_multi_tool_suppression_silences_findings_in_each_family():
    from repro.analysis import specflow
    from repro.analysis.taint import spectaint

    src = (
        "def step(history, transport):\n"
        "    guess = speculate(history)\n"
        "    transport.send(1, guess)"
        "  # specflow: disable=SPF101, SPT302\n"
    )
    assert specflow.analyze_source(src, path="<t>") == []
    assert spectaint.analyze_source(src, path="<t>") == []
    # Without the directive both families fire on that line.
    bare = src.replace("  # specflow: disable=SPF101, SPT302", "")
    assert codes(specflow.analyze_source(bare, path="<t>")) == ["SPF101"]
    assert codes(spectaint.analyze_source(bare, path="<t>")) == ["SPT302"]


def test_select_restricts_rules():
    path = FIXTURES / "bad_spl001_unawaited.py"
    source = path.read_text()
    assert lint_source(source, select=["SPL002"]) == []
    assert codes(lint_source(source, select=["SPL001"])) == ["SPL001"]


def test_syntax_error_reports_spl000():
    diags = lint_source("def broken(:\n")
    assert [d.code for d in diags] == ["SPL000"]


# ---------------------------------------------------------------- reporters
def test_text_reporter_clean_and_dirty():
    assert render_text([]) == "speclint: clean"
    diags = lint_fixture("bad_spl001_unawaited.py")
    text = render_text(diags)
    assert "SPL001" in text and "error(s)" in text


def test_json_reporter_shape():
    diags = lint_fixture("bad_spl006_broad_except.py")
    doc = json.loads(render_json(diags))
    assert doc["tool"] == "speclint"
    assert set(doc["summary"]) == {"total", "errors", "warnings"}
    assert doc["summary"]["total"] == len(diags)
    assert doc["summary"]["errors"] + doc["summary"]["warnings"] == len(diags)
    for code in all_rule_codes():
        assert code in doc["rules"]
    for record in doc["diagnostics"]:
        assert set(record) == {"path", "line", "col", "code", "severity", "message"}


def test_render_rejects_unknown_format():
    with pytest.raises(ValueError):
        render([], fmt="xml")


# -------------------------------------------------------------------- files
def test_iter_python_files_skips_caches(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.py").write_text("x = 1\n")
    files = iter_python_files([tmp_path])
    assert [f.name for f in files] == ["mod.py"]


def test_lint_paths_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths([str(FIXTURES / "does_not_exist.py")])


# ------------------------------------------------------------------ the CLI
def test_cli_lint_exit_codes(capsys):
    assert main(["lint", str(FIXTURES / "good_protocol.py")]) == 0
    assert "clean" in capsys.readouterr().out
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "SPL001" in out and "SPL006" in out


def test_cli_lint_json_format(capsys):
    assert main(["lint", str(FIXTURES / "bad_spl003_nondet.py"), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["errors"] == 4


def test_cli_lint_missing_path_is_usage_error(capsys):
    assert main(["lint", str(FIXTURES / "nope.py")]) == 2


def test_cli_lint_select(capsys):
    rc = main(["lint", str(FIXTURES / "bad_spl001_unawaited.py"), "--select", "SPL004"])
    assert rc == 0


# ------------------------------------------------- the tree itself is clean
def test_repo_tree_is_speclint_clean():
    """src/, examples/ and benchmarks/ must lint clean — the same gate
    CI applies.  Fixture files are deliberately not part of this set."""
    diags = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "examples", REPO_ROOT / "benchmarks"]
    )
    assert diags == [], render_text(diags)
