"""Integration tests for the speculative driver: correctness invariants.

The strongest invariants:

* FW = 0 reproduces the serial recurrence exactly (it is just the
  blocking algorithm of Fig. 1).
* θ = 0 forces every imperfect speculation to be corrected, so the
  final state equals the serial recurrence *for any forward window*.
* A perfect speculator (linear extrapolation on linear dynamics) is
  always accepted with zero error, and the result again equals the
  serial recurrence.
* Speculation can only change results within the tolerance allowed by
  θ; the run must never deadlock or drop messages.
"""

import numpy as np
import pytest

from repro.core import (
    LinearExtrapolation,
    SpeculativeDriver,
    ZeroOrderHold,
    run_program,
)
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement, RandomDrift


def make_cluster(p, latency=0.0, capacity=1000.0):
    return Cluster(
        uniform_specs(p, capacity=capacity),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def assert_blocks_equal(result_blocks, reference, atol=0.0):
    for rank, ref in reference.items():
        np.testing.assert_allclose(result_blocks[rank], ref, atol=atol, rtol=0)


# ------------------------------------------------------ exactness invariants
def test_fw0_matches_serial_reference():
    prog = CoupledIncrement(nprocs=3, iterations=5, coupling=0.2)
    result = run_program(prog, make_cluster(3, latency=0.1), fw=0)
    assert_blocks_equal(result.final_blocks, prog.reference_run())


def test_fw0_makes_no_speculations():
    prog = CoupledIncrement(nprocs=3, iterations=4)
    result = run_program(prog, make_cluster(3, latency=0.1), fw=0)
    assert all(s.spec_made == 0 for s in result.stats)
    assert all(s.checks == 0 for s in result.stats)
    assert all(s.recomputes == 0 for s in result.stats)


@pytest.mark.parametrize("fw", [1, 2, 3])
def test_theta_zero_always_corrects_to_exact_result(fw):
    """With θ=0 every erroneous speculation is repaired: exact results."""
    prog = RandomDrift(nprocs=3, iterations=6, coupling=0.3, threshold=0.0)
    result = run_program(prog, make_cluster(3, latency=0.5), fw=fw)
    assert_blocks_equal(result.final_blocks, prog.reference_run(), atol=1e-9)


@pytest.mark.parametrize("fw", [1, 2])
def test_perfect_speculator_accepted_and_exact(fw):
    """Constant state + zero-order hold: all speculations exact."""
    prog = CoupledIncrement(
        nprocs=3,
        iterations=5,
        coupling=0.0,
        rates=[0.0, 0.0, 0.0],
        threshold=0.0,
        speculator=ZeroOrderHold(),
    )
    result = run_program(prog, make_cluster(3, latency=0.5), fw=fw)
    assert_blocks_equal(result.final_blocks, prog.reference_run(), atol=0.0)
    total_rejected = sum(s.spec_rejected for s in result.stats)
    assert total_rejected == 0
    assert sum(s.recomputes for s in result.stats) == 0


def test_linear_speculator_on_linear_dynamics_mostly_accepted():
    """After warm-up, linear extrapolation is exact on linear trajectories."""
    prog = CoupledIncrement(
        nprocs=2,
        iterations=10,
        coupling=0.0,
        rates=[1.0, 2.0],
        threshold=1e-9,
        speculator=LinearExtrapolation(),
    )
    result = run_program(prog, make_cluster(2, latency=0.5), fw=1)
    assert_blocks_equal(result.final_blocks, prog.reference_run(), atol=1e-9)
    # Only the first iteration (single-point history, hold fallback)
    # can be rejected; everything afterwards is exact.
    assert sum(s.spec_rejected for s in result.stats) <= 2
    accepted = sum(s.spec_accepted for s in result.stats)
    assert accepted >= 2 * (prog.iterations - 2)


def test_speculation_within_threshold_bounded_deviation():
    """Accepted speculations introduce bounded, nonzero deviation."""
    prog = CoupledIncrement(
        nprocs=2,
        iterations=5,
        coupling=0.0,
        rates=[0.1, 0.1],
        threshold=1e9,  # accept everything
        speculator=ZeroOrderHold(),
    )
    result = run_program(prog, make_cluster(2, latency=0.5), fw=1)
    ref = prog.reference_run()
    for rank in range(2):
        # ZOH mispredicts each step by `rate`; deviation accumulates but
        # stays O(T * rate) -- here inputs only shift means, coupling 0,
        # so own block is exact; just assert the run completed sanely.
        assert np.all(np.isfinite(result.final_blocks[rank]))
    assert sum(s.spec_rejected for s in result.stats) == 0


# ----------------------------------------------------------- timing behaviour
def test_speculation_masks_latency():
    """With comm delay >> compute, FW=1 must beat FW=0 (Fig. 2b vs 2a)."""
    def run(fw):
        prog = CoupledIncrement(
            nprocs=2, iterations=8, coupling=0.0, rates=[0.0, 0.0],
            threshold=0.0, speculator=ZeroOrderHold(), ops_per_compute=1000.0,
        )
        cluster = make_cluster(2, latency=1.0, capacity=1000.0)  # comp 1s, comm 1s
        return run_program(prog, cluster, fw=fw)

    t0 = run(0).makespan
    t1 = run(1).makespan
    assert t1 < t0
    # With comm <= compute, FW=1 can mask nearly all of the delay:
    # per-iteration cost drops from comp+comm toward comp+check.
    assert t1 < 0.75 * t0


def test_fw2_masks_more_than_fw1_when_comm_dominates():
    def run(fw):
        prog = CoupledIncrement(
            nprocs=2, iterations=10, coupling=0.0, rates=[0.0, 0.0],
            threshold=0.0, speculator=ZeroOrderHold(), ops_per_compute=1000.0,
        )
        cluster = make_cluster(2, latency=2.5, capacity=1000.0)  # comp 1s, comm 2.5s
        return run_program(prog, cluster, fw=fw)

    t1 = run(1).makespan
    t2 = run(2).makespan
    assert t2 < t1


def test_bad_speculation_costs_more_than_blocking():
    """All-rejected speculation pays recompute penalty (Fig. 2c)."""
    def run(fw):
        prog = RandomDrift(
            nprocs=2, iterations=6, coupling=0.0,
            threshold=0.0, speculator=ZeroOrderHold(), ops_per_compute=1000.0,
        )
        cluster = make_cluster(2, latency=0.01, capacity=1000.0)  # comm ~ free
        return run_program(prog, cluster, fw=fw)

    t0 = run(0).makespan
    t1 = run(1).makespan
    # With negligible communication to mask, rejected speculations can
    # only add overhead.
    assert t1 > t0


def test_comm_phase_shrinks_with_speculation():
    def run(fw):
        prog = CoupledIncrement(
            nprocs=2, iterations=8, coupling=0.0, rates=[0.0, 0.0],
            threshold=0.0, speculator=ZeroOrderHold(), ops_per_compute=1000.0,
        )
        cluster = make_cluster(2, latency=5.0, capacity=1000.0)
        return run_program(prog, cluster, fw=fw)

    b0 = run(0).breakdown()
    b1 = run(1).breakdown()
    assert b1["comm"] < b0["comm"]
    assert b1["spec"] > 0
    assert b1["check"] > 0
    assert b0["spec"] == 0


# ------------------------------------------------------------- bookkeeping
def test_stats_counting_consistency():
    prog = RandomDrift(nprocs=3, iterations=6, threshold=0.0)
    result = run_program(prog, make_cluster(3, latency=0.5), fw=1)
    for s in result.stats:
        assert s.checks == s.spec_accepted + s.spec_rejected
        assert s.iterations == prog.iterations
        # every non-cascade speculation gets checked eventually
        assert s.checks > 0
        assert s.messages_sent == (prog.iterations - 1) * (prog.nprocs - 1)


def test_no_tainted_sends_with_fw1_or_fw0():
    """Fig. 3 sends X_j(t) only after iteration t-1 is verified, so with
    FW <= 1 every broadcast value is final (corrections already applied)."""
    prog = RandomDrift(nprocs=2, iterations=6, threshold=0.0)
    for fw in (0, 1):
        result = run_program(prog, make_cluster(2, latency=0.5), fw=fw)
        assert sum(s.tainted_sends for s in result.stats) == 0


def test_tainted_sends_possible_with_fw2():
    """With FW=2 a processor may broadcast a block whose chain consumed
    a still-unverified speculation; the counter must notice."""
    prog = RandomDrift(nprocs=2, iterations=8, threshold=0.0,
                       ops_per_compute=1000.0)
    cluster = make_cluster(2, latency=3.0, capacity=1000.0)  # comm 3x compute
    result = run_program(prog, cluster, fw=2)
    assert sum(s.tainted_sends for s in result.stats) > 0


def test_single_processor_trivial_run():
    prog = CoupledIncrement(nprocs=1, iterations=4, rates=[1.0])
    result = run_program(prog, make_cluster(1), fw=1)
    assert_blocks_equal(result.final_blocks, prog.reference_run())
    assert result.stats[0].spec_made == 0
    assert result.makespan > 0


def test_driver_validates_inputs():
    prog = CoupledIncrement(nprocs=2, iterations=2)
    with pytest.raises(ValueError):
        SpeculativeDriver(prog, make_cluster(3), fw=1)
    with pytest.raises(ValueError):
        SpeculativeDriver(prog, make_cluster(2), fw=-1)


def test_run_result_metadata():
    prog = CoupledIncrement(nprocs=2, iterations=3)
    result = run_program(prog, make_cluster(2, latency=0.1), fw=1)
    assert result.nprocs == 2
    assert result.fw == 1
    assert result.iterations == 3
    assert result.time_per_iteration == pytest.approx(result.makespan / 3)
    assert len(result.capacities) == 2


def test_recompute_fraction_zero_when_perfect():
    prog = CoupledIncrement(
        nprocs=2, iterations=5, coupling=0.0, rates=[0.0, 0.0],
        threshold=0.0, speculator=ZeroOrderHold(),
    )
    result = run_program(prog, make_cluster(2, latency=0.5), fw=1)
    assert result.recompute_fraction == 0.0
    assert result.rejection_rate == 0.0


def test_recompute_fraction_positive_when_always_wrong():
    prog = RandomDrift(nprocs=2, iterations=5, threshold=0.0)
    result = run_program(prog, make_cluster(2, latency=0.5), fw=1)
    assert result.recompute_fraction > 0.0
    assert result.rejection_rate == 1.0


def test_determinism_same_config_same_everything():
    def once():
        prog = RandomDrift(nprocs=3, iterations=5, threshold=0.0)
        r = run_program(prog, make_cluster(3, latency=0.3), fw=2)
        return (
            r.makespan,
            {k: v.tolist() for k, v in r.final_blocks.items()},
            [s.spec_made for s in r.stats],
        )

    assert once() == once()


def test_heterogeneous_cluster_slowest_sets_pace():
    from repro.vm import ProcessorSpec

    prog = CoupledIncrement(nprocs=2, iterations=4, ops_per_compute=1000.0)
    cluster = Cluster(
        [ProcessorSpec("fast", 2000.0), ProcessorSpec("slow", 500.0)],
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(0.01)),
    )
    result = run_program(prog, cluster, fw=0)
    # slow rank needs 2s per iteration; makespan >= 4 iterations * 2s
    assert result.makespan >= 8.0
    assert_blocks_equal(result.final_blocks, prog.reference_run())


@pytest.mark.parametrize("p", [2, 4, 7])
def test_various_cluster_sizes(p):
    prog = CoupledIncrement(nprocs=p, iterations=4, coupling=0.1,
                            rates=list(range(p)), threshold=0.0)
    result = run_program(prog, make_cluster(p, latency=0.2), fw=1)
    assert_blocks_equal(result.final_blocks, prog.reference_run(), atol=1e-9)


def test_fw_larger_than_iterations_is_safe():
    prog = RandomDrift(nprocs=2, iterations=3, threshold=0.0)
    result = run_program(prog, make_cluster(2, latency=0.5), fw=10)
    assert_blocks_equal(result.final_blocks, prog.reference_run(), atol=1e-9)
