"""Unit tests for the specfault layer: plans, injection, recovery.

The FaultPlan is data; the injector's decisions are pure hashes of
(seed, fault index, src, dst, seq).  These tests pin the plan's
serialization contract, the recovery machinery (retransmit buffers,
duplicate suppression, bounded retries) and the DegradedWindow policy
wrapper in isolation; `test_fault_determinism.py` covers the
end-to-end reproducibility guarantees.
"""

import numpy as np
import pytest

from repro import RunConfig, run
from repro.engine.core import RetransmitExhausted
from repro.faults import (
    EdgeFault,
    FaultPlan,
    RankFault,
    TriggerWindow,
)
from repro.policy.window import DegradedWindow

from tests.toy_programs import CoupledIncrement


def _program(p=4, iterations=12):
    return CoupledIncrement(p, iterations, coupling=0.05)


def _chaos(plan, prog=None, **cfg):
    prog = prog if prog is not None else _program()
    cfg.setdefault("backend", "loopback")
    cfg.setdefault("fw", 1)
    cfg.setdefault("cascade", "recompute")
    return run(RunConfig(prog, fault_plan=plan, **cfg))


# ------------------------------------------------------------------ plans
def test_plan_round_trips_through_dict():
    plan = FaultPlan(
        seed=11,
        edges=(
            EdgeFault(kind="drop", rate=0.1, src=0, dst=2),
            EdgeFault(kind="delay", rate=0.5, delay=3.0,
                      window=TriggerWindow(start=2, stop=8)),
        ),
        ranks=(RankFault(rank=1, slowdown=2.5, crash_at=9),),
        max_retries=6,
        sender_timeout=4.0,
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_plan_round_trips_through_file(tmp_path):
    plan = FaultPlan(seed=3, edges=(EdgeFault(kind="reorder", rate=0.2),))
    path = tmp_path / "plan.json"
    plan.save(str(path))
    assert FaultPlan.load(str(path)) == plan


def test_edge_fault_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown edge-fault kind"):
        EdgeFault(kind="gremlin", rate=0.1)


def test_edge_fault_rejects_bad_rate():
    with pytest.raises(ValueError, match=r"rate must be in \[0, 1\]"):
        EdgeFault(kind="drop", rate=1.5)


def test_rank_fault_rejects_speedup():
    with pytest.raises(ValueError, match="slowdown must be >= 1"):
        RankFault(rank=0, slowdown=0.5)


def test_plan_rejects_zero_retries():
    with pytest.raises(ValueError, match="max_retries"):
        FaultPlan(max_retries=0)


def test_trigger_window_half_open():
    window = TriggerWindow(start=2, stop=5)
    assert not window.contains(1)
    assert window.contains(2)
    assert window.contains(4)
    assert not window.contains(5)
    assert TriggerWindow(start=3).contains(10**6)  # stop=None: open-ended


def test_edge_fault_wildcards_and_window():
    fault = EdgeFault(kind="drop", rate=1.0, src=1,
                      window=TriggerWindow(stop=4))
    assert fault.matches(1, 0, 3)
    assert not fault.matches(2, 0, 3)   # src pinned
    assert not fault.matches(1, 0, 4)   # window closed


# --------------------------------------------------------------- recovery
def test_drops_heal_and_physics_survive():
    prog = _program()
    clean = run(RunConfig(prog, backend="loopback", fw=1, cascade="recompute"))
    plan = FaultPlan(seed=7, edges=(EdgeFault(kind="drop", rate=0.2),))
    report = _chaos(plan, prog)
    summary = report.fault_summary
    assert summary["injected"].get("drop", 0) >= 1
    assert summary["outstanding_losses"] == 0
    healed = (summary["retransmits_serviced"] + summary["auto_retransmits"])
    assert healed >= summary["injected"]["drop"]
    for rank in range(prog.nprocs):
        np.testing.assert_array_equal(report.results[rank], clean.results[rank])


def test_duplicates_are_suppressed():
    plan = FaultPlan(seed=5, edges=(EdgeFault(kind="duplicate", rate=0.5),))
    prog = _program()
    clean = run(RunConfig(prog, backend="loopback", fw=1, cascade="recompute"))
    report = _chaos(plan, prog)
    assert report.fault_summary["injected"].get("duplicate", 0) >= 1
    assert sum(s.dups_suppressed for s in report.stats) >= 1
    for rank in range(prog.nprocs):
        np.testing.assert_array_equal(report.results[rank], clean.results[rank])


def test_unserviced_loss_exhausts_retries():
    # retransmit=False models a transport with no recovery: the engine
    # notices the gap when iteration 2's message overtakes the dropped
    # iteration-1 message, and its bounded retry loop must give up
    # loudly, not hang.  (Inter-rank messages carry iterations >= 1;
    # t=0 blocks are seeded locally.)
    plan = FaultPlan(
        seed=0,
        retransmit=False,
        edges=(EdgeFault(kind="drop", rate=1.0, src=0, dst=1,
                         window=TriggerWindow(stop=2)),),
    )
    with pytest.raises(RetransmitExhausted, match="retransmit request"):
        _chaos(plan, _program(p=2, iterations=4))


def test_silent_unrecoverable_loss_fails_loudly():
    # Drop *every* message on the edge with retransmission off: the
    # sender stalls too, so no later arrival ever opens a sequence gap
    # and the engine's retry budget can never engage.  The fault seam
    # must bound its fruitless polls and raise, not livelock.
    plan = FaultPlan(
        seed=0,
        retransmit=False,
        edges=(EdgeFault(kind="drop", rate=1.0, src=0, dst=1),),
    )
    with pytest.raises(RetransmitExhausted, match="cannot be recovered"):
        _chaos(plan, _program(p=2, iterations=4))


def test_crash_terminates_the_run():
    from repro.faults import InjectedCrash

    plan = FaultPlan(seed=0, ranks=(RankFault(rank=1, crash_at=3),))
    with pytest.raises(InjectedCrash, match="planned crash"):
        _chaos(plan)


def test_straggler_does_not_change_physics():
    prog = _program()
    clean = run(RunConfig(prog, backend="loopback", fw=1, cascade="recompute"))
    plan = FaultPlan(seed=2, ranks=(RankFault(rank=1, slowdown=3.0),))
    report = _chaos(plan, prog)
    for rank in range(prog.nprocs):
        np.testing.assert_array_equal(report.results[rank], clean.results[rank])


def test_same_plan_same_summary():
    plan = FaultPlan(
        seed=9,
        edges=(EdgeFault(kind="drop", rate=0.15),
               EdgeFault(kind="reorder", rate=0.1)),
    )
    first = _chaos(plan).fault_summary
    second = _chaos(plan).fault_summary
    assert first == second


# --------------------------------------------------------- DegradedWindow
class _FixedPolicy:
    """Inner stub: always asks for `want`, bounded to [min_fw, max_fw]."""

    def __init__(self, want=4, min_fw=1, max_fw=4):
        self.want = want
        self._min, self._max = min_fw, max_fw
        self.calls = 0

    @property
    def min_fw(self):
        return self._min

    @property
    def max_fw(self):
        return self._max

    def spawn(self):
        return _FixedPolicy(self.want, self._min, self._max)

    def on_iteration(self, t, *, fw, epoch_wait, checks, rejects, now):
        self.calls += 1
        return self.want

    def state(self):
        return (float(self.want),)


def _decide(policy, t, fw):
    return policy.on_iteration(
        t, fw=fw, epoch_wait=0.0, checks=1, rejects=0, now=float(t)
    )


def test_degraded_window_collapses_under_loss():
    policy = DegradedWindow(inner=_FixedPolicy(want=4), recover_after=2)
    policy.observe_losses(1)  # fresh retransmit seen
    assert _decide(policy, 0, fw=4) == 2
    assert policy.degraded
    policy.observe_losses(2)  # loss persists: keep halving toward 0
    assert _decide(policy, 1, fw=2) == 1
    assert policy.inner.calls == 0  # inner never consulted while degraded


def test_degraded_window_holds_then_recovers():
    policy = DegradedWindow(inner=_FixedPolicy(want=3), recover_after=2)
    policy.observe_losses(1)
    assert _decide(policy, 0, fw=4) == 2
    # Clean iteration 1: still held collapsed (streak < recover_after).
    policy.observe_losses(1)
    assert _decide(policy, 1, fw=2) == 2
    assert policy.degraded
    # Clean iteration 2: streak reached — inner policy steers again.
    policy.observe_losses(1)
    assert _decide(policy, 2, fw=2) == 3
    assert not policy.degraded


def test_degraded_window_clamps_to_inner_bounds():
    policy = DegradedWindow(inner=_FixedPolicy(want=99, min_fw=1, max_fw=4),
                            recover_after=1)
    policy.observe_losses(1)
    assert _decide(policy, 0, fw=1) == 0  # may park below inner.min_fw
    assert policy.min_fw == 0
    policy.observe_losses(1)
    assert _decide(policy, 1, fw=0) == 4  # recovery clamps into [1, 4]


def test_degraded_window_spawn_is_private():
    template = DegradedWindow(inner=_FixedPolicy(), recover_after=3)
    clone = template.spawn()
    assert clone is not template
    assert clone.inner is not template.inner
    clone.observe_losses(5)
    _decide(clone, 0, fw=4)
    assert clone.degraded and not template.degraded


def test_degraded_run_collapses_window_history():
    # End to end: persistent loss with the wrapper seated must show a
    # shrink in the recorded (iteration, fw) trajectory.
    plan = FaultPlan(seed=1, edges=(EdgeFault(kind="drop", rate=0.3),))
    policy = DegradedWindow(inner=_FixedPolicy(want=2, min_fw=0, max_fw=2),
                            recover_after=3)
    report = _chaos(plan, _program(p=4, iterations=16),
                    fw=2, window_policy=policy)
    assert report.fault_summary["total_injected"] >= 1
    flat = [fw for hist in report.window_history.values() for _, fw in hist]
    assert min(flat) < 2  # at least one rank collapsed its window
