"""MPRunner failure handling: a dying worker must not strand the run.

Regression tests for two hangs:

* pre-barrier failure — a rank that raises while building its engine
  reports immediately; the runner aborts the start barrier so parked
  peers fail fast instead of waiting out the full timeout.
* post-barrier failure — a rank that dies mid-protocol leaves peers
  blocked on receives that will never complete; the runner gives them
  a short grace window, then synthesizes their reports and tears the
  workers down rather than burning the whole timeout.
"""

import multiprocessing
import time

import pytest

from repro.parallel import MPRunner

from tests.toy_programs import CoupledIncrement


class ExplodingInit(CoupledIncrement):
    """Rank 1 dies before the start barrier (engine construction)."""

    def initial_block(self, rank):
        if rank == 1:
            raise RuntimeError("boom in initial_block")
        return super().initial_block(rank)


class ExplodingCompute(CoupledIncrement):
    """Rank 0 dies mid-protocol, after the start barrier."""

    def compute(self, rank, inputs, t):
        if rank == 0 and t == 2:
            raise RuntimeError("boom in compute")
        return super().compute(rank, inputs, t)


def _assert_no_orphans():
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    alive = multiprocessing.active_children()
    assert not alive, f"worker processes left running: {alive}"


def test_pre_barrier_failure_raises_fast():
    runner = MPRunner(ExplodingInit(2, iterations=6), fw=1)
    start = time.monotonic()
    with pytest.raises(RuntimeError, match="boom in initial_block"):
        runner.run(timeout=60.0)
    # Far below the run timeout: the error surfaced via the aborted
    # barrier, not by waiting the healthy rank out.
    assert time.monotonic() - start < 30.0
    _assert_no_orphans()


def test_post_barrier_failure_bounded_by_grace():
    runner = MPRunner(ExplodingCompute(2, iterations=8), fw=1)
    start = time.monotonic()
    with pytest.raises(RuntimeError, match="boom in compute"):
        runner.run(timeout=120.0)
    # Bounded by the failure grace window (10 s) plus join/teardown
    # slack, not by the 120 s run timeout.
    assert time.monotonic() - start < 60.0
    _assert_no_orphans()
