"""Toy SyncIterativeProgram implementations shared by the test suite."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core import SyncIterativeProgram


class CoupledIncrement(SyncIterativeProgram):
    """x_j(t+1) = x_j(t) + coupling * global_mean(t) + rate_j.

    * ``coupling = 0`` makes every block's trajectory exactly linear in
      t, so :class:`~repro.core.LinearExtrapolation` speculates it
      perfectly once two history points exist.
    * ``rate_j = 0`` for all j (and coupling 0) makes the state
      constant, so even a zero-order hold is perfect from t = 0.
    """

    def __init__(
        self,
        nprocs: int,
        iterations: int,
        block_size: int = 4,
        coupling: float = 0.0,
        rates: Optional[Sequence[float]] = None,
        ops_per_compute: float = 1000.0,
        wall_compute: float = 0.0,
        **kwargs,
    ) -> None:
        super().__init__(nprocs, iterations, **kwargs)
        self.block_size = block_size
        self.coupling = coupling
        self.rates = list(rates) if rates is not None else [float(j + 1) for j in range(nprocs)]
        if len(self.rates) != nprocs:
            raise ValueError("rates length must equal nprocs")
        self.ops_per_compute = ops_per_compute
        #: Real wall seconds to busy-burn inside compute() — used by the
        #: multiprocessing-backend tests, where masking needs actual
        #: CPU work to overlap with (the simulator uses virtual time).
        self.wall_compute = wall_compute

    def initial_block(self, rank: int) -> np.ndarray:
        return np.full(self.block_size, float(rank), dtype=float)

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        if self.wall_compute > 0.0:
            import time

            deadline = time.perf_counter() + self.wall_compute
            while time.perf_counter() < deadline:
                pass
        mean = float(np.mean([np.mean(inputs[k]) for k in range(self.nprocs)]))
        return inputs[rank] + self.coupling * mean + self.rates[rank]

    def compute_ops(self, rank: int) -> float:
        return self.ops_per_compute

    def block_nbytes(self, rank: int) -> int:
        return 8 * self.block_size

    def reference_run(self) -> dict[int, np.ndarray]:
        """Serial ground truth: the exact recurrence, no speculation."""
        blocks = {j: self.initial_block(j) for j in range(self.nprocs)}
        for t in range(self.iterations):
            blocks = {j: self.compute(j, blocks, t) for j in range(self.nprocs)}
        return blocks


class RandomDrift(CoupledIncrement):
    """Adds deterministic per-iteration pseudo-random jumps.

    The jumps are a fixed function of (rank, t), so the recurrence is
    still reproducible, but no low-order extrapolation predicts it —
    useful for exercising the rejection/correction machinery.
    """

    def compute(self, rank, inputs, t):
        base = super().compute(rank, inputs, t)
        jump = np.sin(1000.0 * (rank + 1) * (t + 1)) * 5.0
        return base + jump
