"""Tests for specbound: the symbolic bound language, the SPB rule
pack, interprocedural buffer summaries, trace-validated occupancy
contracts, the EventLog cap, and the ``repro bounds`` / ``repro
check`` CLIs."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.baselines import load_baselines
from repro.analysis.bounds import (
    CONFIRMED,
    OCCUPANCY_BOUNDS,
    PARAMS,
    REFUTED,
    UNOBSERVED,
    Add,
    Const,
    Max,
    Mul,
    Param,
    analyze_paths,
    analyze_source,
    cascade_bound,
    check_occupancy,
    event_count_bound,
    history_ring_bound,
    inbox_bound,
    inferred_iterations,
    inflight_bound,
    observed_cascade_depth,
    observed_inbox_depths,
    observed_inflight_sends,
    observed_ring_spans,
    rule_catalogue,
)
from repro.analysis.diagnostics import SPB_RULES, Severity, all_spb_codes
from repro.analysis.linter import parse_suppressions
from repro.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.trace.events import EventLog

FIXTURES = Path(__file__).parent / "specbound_fixtures"
SRC = Path(__file__).parent.parent / "src"

ALL_CODES = [f"SPB40{i}" for i in range(1, 9)]


def _codes_of(path):
    return [d.code for d in analyze_paths([path])]


# --------------------------------------------------------------- registry


def test_all_spb_rules_registered():
    assert all_spb_codes() == ALL_CODES
    assert set(rule_catalogue()) == set(ALL_CODES)
    errors = {"SPB401", "SPB404"}
    for code in ALL_CODES:
        expected = Severity.ERROR if code in errors else Severity.WARNING
        assert SPB_RULES[code].severity is expected


# --------------------------------------------------------------- fixtures


@pytest.mark.parametrize(
    "name, code",
    [
        ("bad_append_loop.py", "SPB401"),
        ("bad_interproc_chain.py", "SPB401"),
        ("bad_literal_trim.py", "SPB402"),
        ("bad_bare_deque.py", "SPB403"),
        ("bad_ungated_inbox.py", "SPB404"),
        ("bad_unclamped_widen.py", "SPB405"),
        ("bad_event_buffer.py", "SPB406"),
        ("bad_unguarded_cascade.py", "SPB407"),
        ("bad_iteration_dict.py", "SPB408"),
    ],
)
def test_each_bad_fixture_fires_only_its_rule(name, code):
    assert _codes_of(FIXTURES / name) == [code]


def test_interprocedural_append_through_helper():
    diags = analyze_paths([FIXTURES / "bad_interproc_chain.py"])
    assert [d.code for d in diags] == ["SPB401"]
    # The finding lands on the call site in `compute`, where the
    # buffer is handed to the helper — not inside `stash`, which only
    # appends to whatever it is given.
    assert "via 'stash'" in diags[0].message


@pytest.mark.parametrize(
    "name", ["good_ring_window.py", "good_trimmed_inbox.py"]
)
def test_good_fixtures_are_clean(name):
    assert _codes_of(FIXTURES / name) == []


def test_whole_fixture_dir_fires_every_rule():
    codes = {d.code for d in analyze_paths([FIXTURES])}
    assert codes == set(ALL_CODES)


def test_select_restricts_rules():
    diags = analyze_paths([FIXTURES], select=["SPB403"])
    assert {d.code for d in diags} == {"SPB403"}


def test_suppression_directive_silences_a_finding():
    source = (FIXTURES / "bad_ungated_inbox.py").read_text()
    assert [d.code for d in analyze_source(source, path="<t>")] == ["SPB404"]
    silenced = source.replace(
        "self.pending.append((src, message))",
        "self.pending.append((src, message))  # specbound: disable=SPB404",
    )
    assert analyze_source(silenced, path="<t>") == []


def test_any_family_spelling_carries_spb_codes():
    source = "x = 1  # speclint: disable=SPB404\n# spectaint: disable-file=SPB401\n"
    per_line, file_wide = parse_suppressions(source)
    assert per_line == {1: {"SPB404"}}
    assert file_wide == {"SPB401"}


def test_syntax_error_yields_spb000():
    diags = analyze_source("def broken(:\n", path="<t>")
    assert [d.code for d in diags] == ["SPB000"]


def test_src_tree_is_clean():
    assert analyze_paths([SRC]) == []


def test_analysis_is_deterministic_over_fixtures():
    assert analyze_paths([FIXTURES]) == analyze_paths([FIXTURES])


# ---------------------------------------------------------------- symbolic


ENVS = st.fixed_dictionaries(
    {
        "p": st.integers(min_value=1, max_value=16),
        "fw": st.integers(min_value=0, max_value=8),
        "bw": st.integers(min_value=1, max_value=8),
        "iters": st.integers(min_value=1, max_value=64),
    }
)


@given(env=ENVS)
@settings(max_examples=80, deadline=None)
def test_bound_constructors_match_reference_formulas(env):
    p, fw, bw, iters = env["p"], env["fw"], env["bw"], env["iters"]
    assert history_ring_bound().evaluate(env) == max(bw, 2) + 2
    assert inbox_bound().evaluate(env) == fw + 1
    assert inflight_bound().evaluate(env) == (p - 1) * (fw + 1)
    assert cascade_bound().evaluate(env) == max(fw, 1)
    assert event_count_bound().evaluate(env) == p * iters * (
        6 + (p - 1) * (2 * fw + 6)
    )


@given(env=ENVS)
@settings(max_examples=80, deadline=None)
def test_substitute_evaluate_round_trip(env):
    for expr in OCCUPANCY_BOUNDS.values():
        closed = expr.substitute(env)
        assert closed.params() == frozenset()
        assert closed.evaluate({}) == expr.evaluate(env)


@given(env=ENVS)
@settings(max_examples=80, deadline=None)
def test_partial_substitution_commutes_with_evaluate(env):
    for expr in OCCUPANCY_BOUNDS.values():
        partial = expr.substitute({"fw": env["fw"], "bw": env["bw"]})
        assert partial.params() <= frozenset(PARAMS)
        assert partial.evaluate(env) == expr.evaluate(env)


def test_expr_operator_sugar_and_render():
    fw = Param("fw")
    assert (fw + 1).render() == "fw + 1"
    assert (1 + fw).evaluate({"fw": 3}) == 4
    assert (fw - 1).render() == "fw - 1"
    assert (2 * fw).evaluate({"fw": 5}) == 10
    assert isinstance((Param("p") - 1) * (fw + 1), Mul)
    assert ((Param("p") - 1) * (fw + 1)).render() == "(p - 1) * (fw + 1)"
    assert Max((Param("bw"), Const(2))).render() == "max(bw, 2)"
    assert history_ring_bound().render() == "max(bw, 2) + 2"


def test_expr_params_and_hashability():
    assert inflight_bound().params() == frozenset({"p", "fw"})
    assert event_count_bound().params() == frozenset({"p", "fw", "iters"})
    assert hash(inbox_bound()) == hash(Add((Param("fw"), Const(1))))


def test_param_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown protocol parameter"):
        Param("theta")


def test_unbound_param_raises_on_evaluate():
    with pytest.raises(KeyError, match="unbound"):
        inbox_bound().evaluate({"p": 2})


# --------------------------------------------------------------- contracts


def _healthy_log():
    """Two ranks exchanging three tagged iterations, one correction."""
    log = EventLog()
    for t in range(1, 4):
        base = float(t)
        log.record_message("send", 0, base, peer=1, tag=("vars", t))
        log.record_message("send", 1, base, peer=0, tag=("vars", t))
        log.record_message("recv", 0, base + 0.4, peer=1, tag=("vars", t))
        log.record_message("recv", 1, base + 0.4, peer=0, tag=("vars", t))
    log.record("correct", 0, 4.0, peer=1, family="vars", iteration=3)
    return log


def _flooded_log(depth=5):
    """Rank 0 fires `depth` sends at rank 1 before a single recv."""
    log = EventLog()
    for t in range(1, depth + 1):
        log.record_message("send", 0, float(t), peer=1, tag=("vars", t))
    log.record_message("recv", 1, float(depth + 1), peer=0, tag=("vars", 1))
    return log


def test_healthy_log_confirms_every_contract():
    verdicts = check_occupancy(_healthy_log(), fw=1, bw=2)
    # 3 per-rank metrics x 2 ranks + run-scoped cascade + events.
    assert len(verdicts) == 8
    assert {v.status for v in verdicts} == {CONFIRMED}


def test_flooded_inbox_refutes_the_fw_bound():
    verdicts = check_occupancy(_flooded_log(depth=5), fw=1, bw=2)
    by_key = {(v.metric, v.scope): v for v in verdicts}
    inbox = by_key[("inbox", "rank 1")]
    assert inbox.status == REFUTED
    assert inbox.observed == 5 and inbox.bound == 2
    # The same flood shows up as the sender's in-flight excess.
    assert by_key[("in-flight", "rank 0")].status == REFUTED
    # A wide enough window would have made it legal.
    wide = {(v.metric, v.scope): v for v in check_occupancy(_flooded_log(5), fw=4)}
    assert wide[("inbox", "rank 1")].status == CONFIRMED


def test_untagged_log_is_unobserved_not_refuted():
    log = EventLog()
    log.record("compute", 0, 0.0)
    verdicts = check_occupancy(log, fw=1, bw=2)
    assert {v.status for v in verdicts} == {UNOBSERVED}
    assert all(v.observed == 0 for v in verdicts)


def test_observed_ring_spans_track_channel_lag():
    log = EventLog()
    log.record_message("recv", 0, 1.0, peer=1, tag=("vars", 5))
    log.record_message("recv", 0, 2.0, peer=2, tag=("vars", 2))
    # Fast channel at iteration 5, slow at 2: span 5 - 2 + 2.
    assert observed_ring_spans(log) == {0: 5}


def test_observed_inbox_depth_is_per_family():
    log = EventLog()
    log.record_message("send", 0, 1.0, peer=1, tag=("vars", 1))
    log.record_message("send", 0, 2.0, peer=1, tag=("barrier", 1))
    log.record_message("recv", 1, 3.0, peer=0, tag=("vars", 1))
    # One outstanding message per family, never two on one channel.
    assert observed_inbox_depths(log) == {1: 1}
    assert observed_inflight_sends(log) == {0: 1}


def test_observed_cascade_depth_counts_consecutive_corrections():
    log = EventLog()
    for iteration, kind in enumerate(["correct", "correct", "compute", "correct"]):
        log.record(kind, 0, float(iteration), family="vars", iteration=iteration)
    assert observed_cascade_depth(log) == 2
    assert observed_cascade_depth(EventLog()) is None


def test_inferred_iterations_is_max_tag_plus_one():
    assert inferred_iterations(_healthy_log()) == 4
    assert inferred_iterations(EventLog()) is None


def test_verdict_format_text_shape():
    verdicts = check_occupancy(_flooded_log(depth=5), fw=1, bw=2)
    refuted = [v for v in verdicts if v.status == REFUTED]
    text = refuted[0].format_text()
    assert text.startswith("occupancy-contract ")
    assert "REFUTED" in text and "vs bound" in text


# ------------------------------------------------------------ EventLog cap


def test_event_log_cap_drops_newest_and_counts():
    log = EventLog(max_events=3)
    for t in range(5):
        log.record("compute", 0, float(t), iteration=t)
    assert len(log) == 3
    assert log.dropped == 2
    # The stored prefix keeps contiguous per-rank sequence numbers.
    assert [ev.seq for ev in log.for_rank(0)] == [0, 1, 2]
    assert [ev.iteration for ev in log.for_rank(0)] == [0, 1, 2]


def test_event_log_extend_respects_cap():
    source = EventLog()
    for t in range(4):
        source.record("compute", 1, float(t), iteration=t)
    capped = EventLog(max_events=2)
    capped.extend(source.events)
    assert len(capped) == 2 and capped.dropped == 2


def test_event_log_summary_shape():
    log = EventLog(max_events=8)
    log.record_message("send", 0, 1.0, peer=1, tag=("vars", 1))
    log.record_message("recv", 1, 1.5, peer=0, tag=("vars", 1))
    log.record("compute", 0, 2.0, iteration=1)
    assert log.summary() == {
        "events": 3,
        "ranks": [0, 1],
        "kinds": {"compute": 1, "recv": 1, "send": 1},
        "max_events": 8,
        "dropped": 0,
    }


def test_event_log_negative_cap_rejected():
    with pytest.raises(ValueError, match="max_events"):
        EventLog(max_events=-1)


def test_event_log_uncapped_is_unchanged(tmp_path):
    log = _healthy_log()
    assert log.max_events is None and log.dropped == 0
    path = tmp_path / "trace.jsonl"
    log.save(path)
    reloaded = EventLog.load(path)
    assert reloaded.events == sorted(log.events)
    assert reloaded.summary()["dropped"] == 0


# --------------------------------------------------------------------- CLI


def test_cli_bounds_exit_codes():
    assert main(["bounds", str(FIXTURES)]) == EXIT_FINDINGS
    assert main(["bounds", str(FIXTURES / "good_ring_window.py")]) == EXIT_CLEAN
    assert main(["bounds", "no/such/path.py"]) == EXIT_USAGE


def test_cli_bounds_json_document(capsys):
    assert main(["bounds", str(FIXTURES), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "specbound"
    assert set(ALL_CODES) <= set(doc["rules"])
    assert doc["summary"]["total"] >= len(ALL_CODES)


def test_cli_bounds_sarif_document(capsys):
    assert main(["bounds", str(FIXTURES), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "specbound"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(ALL_CODES)
    for result in run["results"]:
        assert "speclint/v1" in result["partialFingerprints"]


def test_cli_bounds_baseline_flow(tmp_path):
    baseline = tmp_path / "baselines.json"
    assert main(
        ["bounds", str(FIXTURES), "--write-baseline", str(baseline)]
    ) == EXIT_CLEAN
    assert "specbound" in load_baselines(baseline)
    assert main(
        ["bounds", str(FIXTURES), "--baseline", str(baseline)]
    ) == EXIT_CLEAN
    assert main(
        ["bounds", str(FIXTURES), "--baseline", str(tmp_path / "none.json")]
    ) == EXIT_USAGE


def test_cli_bounds_trace_contracts(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _healthy_log().save(trace)
    assert main(
        [
            "bounds", str(FIXTURES / "good_ring_window.py"),
            "--trace", str(trace), "--model-fw", "1", "--model-bw", "2",
        ]
    ) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "occupancy contracts:" in out
    assert "CONFIRMED" in out and "REFUTED" not in out

    flooded = tmp_path / "flooded.jsonl"
    _flooded_log(depth=5).save(flooded)
    assert main(
        [
            "bounds", str(FIXTURES / "good_ring_window.py"),
            "--trace", str(flooded), "--model-fw", "1",
        ]
    ) == EXIT_FINDINGS  # a refuted contract gates even a clean tree
    assert "REFUTED" in capsys.readouterr().out

    assert main(
        ["bounds", str(FIXTURES), "--trace", str(tmp_path / "nope.jsonl")]
    ) == EXIT_USAGE


def test_cli_check_exit_parity_with_bounds(capsys):
    dirty = str(FIXTURES / "bad_bare_deque.py")
    clean = str(FIXTURES / "good_trimmed_inbox.py")
    assert main(["check", dirty]) == main(["bounds", dirty]) == EXIT_FINDINGS
    assert main(["check", clean]) == main(["bounds", clean]) == EXIT_CLEAN
    capsys.readouterr()


def test_cli_check_merged_sarif_includes_specbound(tmp_path, capsys):
    sarif = tmp_path / "merged.sarif"
    assert main(["check", str(FIXTURES), "--sarif", str(sarif)]) == 1
    capsys.readouterr()
    doc = json.loads(sarif.read_text())
    names = [r["tool"]["driver"]["name"] for r in doc["runs"]]
    assert names == [
        "specbound", "specflow", "speclint", "specperf", "spectaint"
    ]
    spb_run = doc["runs"][names.index("specbound")]
    assert {r["ruleId"] for r in spb_run["results"]} == set(ALL_CODES)


def test_cli_check_stats_lines(capsys):
    assert main(
        ["check", str(FIXTURES / "good_ring_window.py"), "--stats"]
    ) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "repro check stats:" in out
    assert "1 file(s)" in out
    for tool in ("specbound", "specflow", "speclint", "specperf", "spectaint"):
        assert tool in out


def test_cli_check_stats_json(capsys):
    assert main(
        ["check", str(FIXTURES / "good_ring_window.py"), "--stats",
         "--format", "json"]
    ) == EXIT_CLEAN
    doc = json.loads(capsys.readouterr().out)
    stats = doc["stats"]
    assert stats["files_parsed"] == 1
    assert stats["syntax_failures"] == 0
    assert set(stats["tool_seconds"]) == {
        "specbound", "specflow", "speclint", "specperf", "spectaint"
    }
