"""Tests for the Barnes-Hut O(N log N) force backend."""

import numpy as np
import pytest

from repro.nbody import accelerations, plummer_sphere, uniform_cube
from repro.nbody.barneshut import Octree, bh_accelerations, bh_accelerations_full


def test_octree_validation():
    with pytest.raises(ValueError):
        Octree(np.zeros((3, 2)), np.ones(3))
    with pytest.raises(ValueError):
        Octree(np.zeros((3, 3)), np.ones(4))
    with pytest.raises(ValueError):
        Octree(np.zeros((3, 3)), np.ones(3), leaf_size=0)


def test_octree_empty_and_single():
    tree = Octree(np.zeros((0, 3)), np.zeros(0))
    assert tree.root is None
    acc, n = bh_accelerations(np.zeros((2, 3)), tree)
    np.testing.assert_array_equal(acc, 0.0)
    assert n == 0

    one = Octree(np.array([[1.0, 2.0, 3.0]]), np.array([5.0]))
    assert one.root.mass == 5.0
    np.testing.assert_allclose(one.root.com, [1.0, 2.0, 3.0])


def test_octree_mass_and_com_consistency():
    ps = uniform_cube(64, seed=3)
    tree = Octree(ps.pos, ps.mass)
    assert tree.root.mass == pytest.approx(ps.mass.sum())
    expected_com = (ps.mass[:, None] * ps.pos).sum(axis=0) / ps.mass.sum()
    np.testing.assert_allclose(tree.root.com, expected_com)
    # Children partition the root's particles.
    child_idx = np.concatenate([c.indices for c in tree.root.children])
    assert sorted(child_idx.tolist()) == list(range(64))


def test_zero_opening_angle_is_exact():
    ps = uniform_cube(50, seed=4, softening=0.05)
    direct = accelerations(ps.pos, ps.mass, softening=0.05)
    bh, _ = bh_accelerations_full(ps.pos, ps.mass, softening=0.05, opening_angle=0.0)
    np.testing.assert_allclose(bh, direct, rtol=1e-10, atol=1e-12)


def test_accuracy_improves_with_smaller_theta():
    ps = plummer_sphere(150, seed=5, softening=0.05)
    direct = accelerations(ps.pos, ps.mass, softening=0.05)
    norm = np.linalg.norm(direct, axis=1).mean()

    def err(theta):
        bh, _ = bh_accelerations_full(
            ps.pos, ps.mass, softening=0.05, opening_angle=theta
        )
        return np.linalg.norm(bh - direct, axis=1).mean() / norm

    e_loose, e_mid, e_tight = err(1.0), err(0.5), err(0.2)
    assert e_tight <= e_mid <= e_loose
    assert e_mid < 0.05  # monopole at theta=0.5: ~percent-level accuracy


def test_interaction_count_scales_sub_quadratically():
    softening = 0.05
    counts = {}
    for n in (256, 1024):
        ps = uniform_cube(n, seed=6, softening=softening)
        _, cnt = bh_accelerations_full(
            ps.pos, ps.mass, softening=softening, opening_angle=0.7
        )
        counts[n] = cnt
    # Per-particle interactions grow ~logarithmically: quadrupling N
    # should not even double them (direct summation would quadruple).
    per_256 = counts[256] / 256
    per_1024 = counts[1024] / 1024
    assert per_1024 < 2.0 * per_256
    # And the absolute count beats direct summation decisively at 1024.
    assert counts[1024] < 0.25 * 1024 * 1024


def test_self_interaction_vanishes():
    pos = np.array([[0.0, 0.0, 0.0]])
    mass = np.array([1.0])
    acc, _ = bh_accelerations_full(pos, mass, softening=0.0)
    np.testing.assert_array_equal(acc, 0.0)


def test_validation_of_inputs():
    ps = uniform_cube(8, seed=0)
    tree = Octree(ps.pos, ps.mass)
    with pytest.raises(ValueError):
        bh_accelerations(np.zeros((2, 2)), tree)
    with pytest.raises(ValueError):
        bh_accelerations(ps.pos, tree, opening_angle=-0.1)


def test_momentum_conservation_approximate():
    """BH forces are not exactly pairwise-antisymmetric, but total force
    stays small relative to the force scale."""
    ps = plummer_sphere(200, seed=7, softening=0.05)
    bh, _ = bh_accelerations_full(ps.pos, ps.mass, softening=0.05, opening_angle=0.5)
    total = np.einsum("i,ij->j", ps.mass, bh)
    scale = np.abs(ps.mass[:, None] * bh).sum(axis=0)
    assert np.all(np.abs(total) < 0.05 * scale)
