"""Fixture: SPP207 — freshly built mutable payload handed to send.

The broadcast payload is a brand-new list, so payload isolation must
deep-copy it on every send; building a tuple instead makes the
payload hit the immutability fast path.
"""


def publish(proc, state, t):
    proc.broadcast([state.x, state.y], tag=("vars", t))   # SPP207
