"""Fixture: SPP203 — allocation inside the innermost compute loop.

The per-pair force loop allocates a fresh scratch vector on every
pair: the allocator runs N^2 times per iteration.  Hoisting the
buffer out of the loop removes all but one allocation.
"""

import numpy as np


def compute(state, pairs):
    total = 0.0
    for i, j in pairs:
        scratch = np.zeros(3)          # SPP203: one allocation per pair
        scratch += state[i] - state[j]
        total += float(scratch.sum())
    return total
