"""Fixture: SPP202 — history container rebuilt inside a loop.

The speculator re-sorts the whole arrival history once per target
iteration: O(targets x history log history) where an incremental
index would be O(targets).
"""


def speculate(history, targets):
    out = ()
    for t in targets:
        recent = sorted(history)[-4:]   # SPP202: rebuilt per target
        out += (recent[-1] + t,)
    return out
