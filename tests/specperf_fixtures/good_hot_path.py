"""Fixture: the fixed idioms — every SPP rule stays silent here.

The payload isolator probes immutability before copying (SPP201), the
fan-out hoists the size computation (SPP208) and sends an immutable
tuple (SPP207), and nothing rebuilds history or allocates inside a
kernel loop.
"""

import copy


def _is_immutable(value):
    return isinstance(value, (int, float, str, bytes, tuple))


def isolate_payload(value):
    if _is_immutable(value):
        return value
    return copy.deepcopy(value)


def payload_nbytes(value):
    return 8


def fanout(proc, peers, state, t):
    size = payload_nbytes(state)
    for dst in peers:
        proc.send(dst, state, tag=("vars", t), nbytes=size)
