"""Fixture: SPP208 — loop-invariant payload sizing per message.

``payload_nbytes(state)`` walks the whole payload, yet ``state`` does
not change across the fan-out loop: the size can be computed once
before the loop.
"""


def fanout(proc, peers, state, t):
    for dst in peers:
        size = payload_nbytes(state)   # SPP208: state is loop-invariant
        proc.send(dst, state, tag=("vars", t), nbytes=size)
