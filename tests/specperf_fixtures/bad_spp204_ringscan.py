"""Fixture: SPP204 — linear HistoryRing scan in a per-message loop.

The verifier calls ``lookup`` on the history ring once per incoming
message: each lookup walks the ring, so verification costs
O(messages x history) per iteration instead of O(messages).
"""


class Verifier:
    def __init__(self, ring):
        self.history = ring

    def verify(self, messages):
        bad = 0
        for msg in messages:
            expected = self.history.lookup(msg.iteration)   # SPP204
            if expected != msg.payload:
                bad += 1
        return bad
