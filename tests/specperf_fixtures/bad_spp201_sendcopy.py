"""Fixture: SPP201 — per-message deepcopy without a fast path.

The send-phase payload isolator deep-copies unconditionally: every
message pays O(payload) even when the payload is already immutable.
The fixed idiom (``good_hot_path.py``) probes immutability first.
"""

import copy


def isolate_payload(value):
    return copy.deepcopy(value)   # SPP201: no immutability probe
