"""Fixture: SPP206 — unbounded event buffer appended to in a hot loop.

The arrival handler accumulates every event forever: memory and any
later scan grow linearly with run length.  A ring buffer (or trimming
on consumption) bounds it.
"""


class Collector:
    def __init__(self):
        self.events = []

    def record_arrival(self, batch):
        for item in batch:
            self.events.append(item)   # SPP206: never trimmed
