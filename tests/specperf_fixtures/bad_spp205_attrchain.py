"""Fixture: SPP205 — attribute chain re-resolved in the kernel loop.

``self.state.pos`` is resolved three times per pair; binding it to a
local before the loop turns three attribute lookups per pair into
zero.
"""


class Kernel:
    def __init__(self, state):
        self.state = state

    def compute(self, pairs):
        acc = 0.0
        for i, j in pairs:
            acc += self.state.pos[i] * self.state.mass[j]   # SPP205
            acc -= self.state.pos[j] * self.state.mass[i]
            acc *= 1.0 + self.state.pos[i]
        return acc
