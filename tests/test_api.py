"""Tests for the unified run API (`repro.api`).

One `RunConfig` + `run()` must cover all three backends with a single
report shape, and stay in exact agreement with the legacy per-backend
entry points it wraps.
"""

import numpy as np
import pytest

from repro import RunConfig, RunReport, run
from repro.core import run_program
from repro.engine.loopback import run_loopback
from repro.faults import EdgeFault, FaultPlan
from repro.netsim.latency import ConstantLatency
from repro.netsim.network import DelayNetwork
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement


def _program(p=4, iterations=10, **kw):
    return CoupledIncrement(p, iterations, coupling=0.05, **kw)


# ------------------------------------------------------------- validation
def test_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        RunConfig(_program(), backend="smoke-signals")


def test_rejects_p_mismatch():
    with pytest.raises(ValueError, match="program.nprocs"):
        RunConfig(_program(p=4), p=8)


def test_accepts_matching_p():
    cfg = RunConfig(_program(p=4), p=4)
    assert cfg.p == 4


def test_rejects_negative_fw():
    with pytest.raises(ValueError, match="fw must be >= 0"):
        RunConfig(_program(), fw=-1)


def test_rejects_zero_bw():
    with pytest.raises(ValueError, match="bw"):
        RunConfig(_program(), bw=0)


def test_rejects_loopback_latency():
    with pytest.raises(ValueError, match="loopback backend has no clock"):
        RunConfig(_program(), backend="loopback", latency=0.1)


def test_rejects_cluster_off_des():
    cluster = Cluster(uniform_specs(4))
    with pytest.raises(ValueError, match="DES-only"):
        RunConfig(_program(), backend="loopback", cluster=cluster)


def test_rejects_cluster_plus_latency():
    cluster = Cluster(uniform_specs(4))
    with pytest.raises(ValueError, match="mutually"):
        RunConfig(_program(), backend="des", cluster=cluster, latency=0.5)


# ---------------------------------------------------------------- parity
def _des_cluster(p, latency=0.0):
    return Cluster(
        uniform_specs(p),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def test_des_parity_with_run_program():
    prog = _program()
    legacy = run_program(prog, _des_cluster(4, 0.01), fw=1, cascade="recompute")
    report = run(RunConfig(prog, backend="des", fw=1, latency=0.01))
    assert report.wall_seconds == legacy.makespan
    for rank in range(prog.nprocs):
        np.testing.assert_array_equal(
            report.results[rank], legacy.final_blocks[rank]
        )


def test_loopback_parity_with_run_loopback():
    prog = _program()
    finals, stats, runner = run_loopback(prog, fw=1, cascade="recompute")
    report = run(RunConfig(prog, backend="loopback", fw=1))
    assert report.wall_seconds == float(runner.rounds)
    for rank in range(prog.nprocs):
        np.testing.assert_array_equal(report.results[rank], finals[rank])
    assert [s.spec_made for s in report.stats] == [s.spec_made for s in stats]


def test_all_backends_match_reference_physics():
    # fw=1 + cascade="recompute" verifies every send before it leaves,
    # so all three backends must land exactly on the serial recurrence.
    prog = _program(p=2, iterations=6)
    reference = prog.reference_run()
    for backend in ("des", "loopback", "mp"):
        report = run(
            RunConfig(prog, backend=backend, fw=1, cascade="recompute",
                      timeout=120.0)
        )
        assert report.backend == backend
        for rank, expected in reference.items():
            np.testing.assert_array_equal(report.results[rank], expected)


# ---------------------------------------------------------- report shape
def test_report_shape_loopback():
    prog = _program()
    report = run(RunConfig(prog, backend="loopback", fw=2))
    assert isinstance(report, RunReport)
    assert set(report.results) == set(range(prog.nprocs))
    assert report.timings  # per-phase op tallies
    assert all(v >= 0 for v in report.timings.values())
    # Trajectories are seeded with the initial window on every backend.
    assert all(h[0] == (0, 2) for h in report.window_history.values())
    assert len(report.stats) == prog.nprocs
    assert 0.0 <= report.rejection_rate <= 1.0
    assert report.fault_summary is None
    assert report.event_log is None


def test_report_records_trace_when_asked():
    report = run(RunConfig(_program(), backend="loopback", record_trace=True))
    assert report.event_log is not None
    assert len(report.event_log.events) > 0


def test_bw_threads_through_to_engines():
    prog = _program()
    report = run(RunConfig(prog, backend="loopback", fw=1, bw=3))
    assert all(eng.hist_cap == 3 for eng in report.raw.engines.values())


def test_fault_summary_surfaces_in_report():
    plan = FaultPlan(seed=7, edges=(EdgeFault(kind="drop", rate=0.2),))
    prog = _program(p=4, iterations=12)
    report = run(
        RunConfig(prog, backend="loopback", fw=1, fault_plan=plan)
    )
    summary = report.fault_summary
    assert summary is not None
    assert summary["total_injected"] >= 1
    assert summary["outstanding_losses"] == 0  # every drop healed
