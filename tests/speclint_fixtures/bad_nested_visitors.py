"""Fixture: rules must reach decorated, nested and async-nested defs.

Regression guard for the rule visitors: every function below hides an
un-driven ``proc.compute(...)`` (SPL001) behind a nesting shape that a
naive top-level-only visitor would skip — a decorator, a closure
inside a closure, an async-nested def, and a method of a class defined
inside a function.
"""

import functools


def decorate(fn):
    return fn


@decorate
@functools.lru_cache(maxsize=None)
def decorated(proc):
    def body():
        proc.compute(1.0)        # SPL001: dropped generator (decorated)
        yield None

    return body


def outer(proc):
    def middle():
        def inner():
            proc.compute(2.0)    # SPL001: dropped generator (doubly nested)
            yield None

        return inner

    return middle


async def async_outer(proc):
    def inner():
        proc.compute(3.0)        # SPL001: dropped generator (async-nested)
        yield None

    return inner


def factory(proc):
    class Stepper:
        def step(self):
            proc.compute(4.0)    # SPL001: dropped generator (class-in-def)
            yield None

    return Stepper
