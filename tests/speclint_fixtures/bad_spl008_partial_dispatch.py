"""SPL008 fixture: a transport interpreter with holes in its dispatch.

``partial_drive`` handles Send and Recv only — TryRecv and Charge
effects (and every notification effect) would be silently dropped,
hanging a parked rank and corrupting the cost accounting.
"""

from repro.engine.events import Recv, Send


def partial_drive(engine, transport):
    gen = engine.run()
    response = None
    while True:
        try:
            effect = gen.send(response)
        except StopIteration as stop:
            return stop.value
        response = None
        kind = type(effect)
        if kind is Send:  # line 21: chain head — misses TryRecv/Charge
            transport.send(effect)
        elif kind is Recv:
            response = transport.recv(effect)
        # no else: notifications vanish


def partial_match_drive(engine, transport):
    gen = engine.run()
    response = None
    while True:
        try:
            effect = gen.send(response)
        except StopIteration as stop:
            return stop.value
        response = None
        match effect:  # line 36: match dispatch — misses Recv/Charge
            case Send():
                transport.send(effect)
            case TryRecv():
                response = transport.try_recv(effect)
        # no case _: notifications vanish
