"""SPL007 fixture: a 'sans-I/O' engine module that sneaks in I/O.

The marker below opts this module into the purity contract the real
engine core/events/ring modules carry by path.
"""
# speclint: sans-io
# speclint: disable-file=SPL003  (the SPL007 findings are the point here)

import time  # line 9: wall clock in the engine
import random  # line 10: process-global RNG
from os import urandom  # line 11: OS entropy
import multiprocessing  # line 12: process management
from socket import create_connection  # line 13: network I/O

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import os  # typing-only: must NOT be flagged


class ImpureEngine:
    def run(self):
        started = time.time()
        jitter = random.random()
        handle = open("/tmp/engine.log", "w")  # line 25: file I/O builtin
        print("engine started", started, jitter, file=handle)  # line 26
        yield started
        _ = (urandom, multiprocessing, create_connection)
