"""Fixture: SPL005 — sending a mutable payload, then mutating it."""

VARS = "vars"


def leak(proc, block, t):
    def body():
        proc.send(1, block, tag=(VARS, t))
        yield from proc.compute(1.0)
        block += 1.0        # SPL005: mutates the already-sent array in place
        block[0] = 0.0      # SPL005: ditto, subscript store

    return body
