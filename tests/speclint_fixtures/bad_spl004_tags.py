"""Fixture: SPL004 — message-tag discipline violations."""

VARS = "vars"


def exchange(proc, payload, t):
    def body():
        proc.send(1, payload, tag="vars")          # SPL004: raw string tag
        proc.send(1, payload, tag=(VARS, t, 0))    # SPL004: not a 2-tuple
        proc.send(1, payload, tag=("vars", t))     # SPL004: inline literal family
        proc.send(1, payload, tag=(VARS, t))       # fine: declared family
        yield from proc.recv(match=None)

    return body
