"""Fixture: a protocol body speclint should accept without diagnostics."""

from repro.des.errors import Interrupt

VARS = "vars"


def rank_program(env, proc, program, rng):
    def body():
        block = program.initial_block(0)
        for t in range(program.iterations):
            proc.send(1, block, tag=(VARS, t))
            delay = float(rng.normal(1.0, 0.1))
            yield from proc.compute(abs(delay))
            msg = yield from proc.recv(match=None)
            try:
                block = program.compute(0, {1: msg.payload}, t)
            except Interrupt:
                raise
        return block

    return body
