"""Fixture: SPL003 — nondeterministic entropy sources in protocol code."""

import os
import random
import time

import numpy as np


def jitter_delay(base):
    wall = time.time()                   # SPL003: wall clock
    noise = random.random()              # SPL003: global random module
    salt = os.urandom(4)                 # SPL003: OS entropy
    legacy = np.random.rand()            # SPL003: legacy numpy global RNG
    return base + wall + noise + len(salt) + legacy


def seeded_delay(base, rng):
    # Injected numpy Generator: allowed.
    return base + rng.normal(0.0, 0.1)
