"""Fixture: violations present but silenced by suppression directives."""
# speclint: disable-file=SPL003

import time


def stamped():
    return time.time()  # file-wide SPL003 suppression covers this


def fire_and_forget(env):
    env.timeout(1.0)  # speclint: disable=SPL001
