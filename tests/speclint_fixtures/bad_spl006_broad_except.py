"""Fixture: SPL006 — exception handling that swallows protocol control flow."""


def rank_program(env, proc):
    def body():
        try:
            yield from proc.compute(1.0)
        except Exception:       # SPL006: swallows Interrupt in a generator
            pass
        try:
            yield from proc.recv(match=None)
        except:                 # SPL006: bare except
            pass

    return body


def helper(fn):
    try:
        return fn()
    except Exception:           # SPL006: no re-raise, traceback discarded
        return None
