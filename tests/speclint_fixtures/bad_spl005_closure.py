"""Fixture: SPL005 — payload mutated by a *closure*, not straight-line code.

The mutation sits in a nested function defined before the send, so a
scan of the enclosing function's own statements never sees it — but
the closure runs after the send (callbacks always do), and it captures
the very array the transport aliased.  The second function shows the
exemption: a parameter named like the payload shadows the closure, so
nothing is captured and nothing fires.
"""

VARS = "vars"


def leak(proc, block, t):
    def on_timer():
        block[0] = 0.0      # runs later; the receiver observes this write

    proc.send(1, block, tag=(VARS, t))   # SPL005: closure mutates payload
    return on_timer


def ok_shadowed(proc, block, t):
    def scale(block):
        block[0] = 0.0      # parameter shadows `block`: no capture

    proc.send(1, block, tag=(VARS, t))
    return scale
