"""Fixture: SPL002 — blocking receive inside a speculative arm."""


def step(proc, fw, speculator, t):
    def body():
        if fw >= 1:
            msg = yield from proc.recv(match=None)   # SPL002: blocks in spec path
        else:
            msg = yield from proc.recv(match=None)   # fine: blocking arm
        return msg

    return body
