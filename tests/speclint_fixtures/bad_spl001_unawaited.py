"""Fixture: SPL001 — simulation calls dropped on the floor.

Not collected by pytest (python_files = test_*.py) and excluded from
ruff; exists purely as speclint input for tests/test_speclint.py.
"""


def rank_program(env, proc):
    def body():
        proc.compute(1.5)          # SPL001: generator never driven
        proc.recv(match=None)      # SPL001: result (a generator) discarded
        env.timeout(3.0)           # SPL001: bare-expression timeout
        yield env.timeout(1.0)

    return body
