"""Property-based tests over the speculative driver's configuration space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_program
from repro.netsim import ConstantLatency, DelayNetwork
from repro.trace import PhaseTrace, render_gantt
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement, RandomDrift


def make_cluster(p, latency):
    return Cluster(
        uniform_specs(p, capacity=1000.0),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


@settings(max_examples=40, deadline=None)
@given(
    p=st.integers(2, 4),
    iterations=st.integers(1, 6),
    coupling=st.floats(0.0, 0.5),
    latency=st.floats(0.0, 3.0),
    fw=st.integers(0, 1),
)
def test_property_theta_zero_fw_le_1_exact(p, iterations, coupling, latency, fw):
    """For any configuration with FW <= 1 and theta = 0, the parallel
    speculative run equals the serial recurrence exactly."""
    prog = RandomDrift(
        nprocs=p, iterations=iterations, coupling=coupling,
        rates=list(range(p)), threshold=0.0, ops_per_compute=1000.0,
    )
    result = run_program(prog, make_cluster(p, latency), fw=fw)
    ref = prog.reference_run()
    for rank in range(p):
        np.testing.assert_allclose(result.final_blocks[rank], ref[rank], atol=1e-9)
    # Bookkeeping invariants hold for every configuration.
    for s in result.stats:
        assert s.checks == s.spec_accepted + s.spec_rejected
        assert s.iterations == iterations
        assert s.tainted_sends == 0


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(2, 3),
    iterations=st.integers(2, 6),
    latency=st.floats(0.1, 4.0),
    fw=st.integers(2, 4),
)
def test_property_deep_windows_finite_and_accounted(p, iterations, latency, fw):
    """FW >= 2 runs complete, stay finite, and never lose messages."""
    prog = CoupledIncrement(
        nprocs=p, iterations=iterations, coupling=0.2,
        rates=list(range(p)), threshold=0.0, ops_per_compute=1000.0,
    )
    result = run_program(prog, make_cluster(p, latency), fw=fw, cascade="none")
    for rank in range(p):
        assert np.all(np.isfinite(result.final_blocks[rank]))
    total_sent = sum(s.messages_sent for s in result.stats)
    total_recv = sum(s.messages_received for s in result.stats)
    assert total_sent == p * (p - 1) * (iterations - 1)
    assert total_recv == total_sent


@settings(max_examples=30, deadline=None)
@given(
    latency=st.floats(0.0, 2.0),
    iterations=st.integers(2, 8),
)
def test_property_speculation_never_slower_when_perfect_and_free_errors(latency, iterations):
    """Perfect speculation: FW=1 makespan <= FW=0 makespan + overheads."""
    def run(fw):
        prog = CoupledIncrement(
            nprocs=2, iterations=iterations, coupling=0.0, rates=[0.0, 0.0],
            threshold=0.0, ops_per_compute=1000.0,
        )
        return run_program(prog, make_cluster(2, latency), fw=fw)

    t0 = run(0).makespan
    r1 = run(1)
    # Overhead bound: spec+check ops per iteration per remote block.
    overhead = iterations * (12.0 * 4 + 24.0 * 4) / 1000.0
    assert r1.makespan <= t0 + overhead + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    spans=st.lists(
        st.tuples(
            st.sampled_from(["compute", "comm", "spec", "check", "correct", "idle"]),
            st.floats(0.0, 10.0),
            st.floats(0.0, 10.0),
        ),
        max_size=20,
    ),
    width=st.integers(1, 120),
)
def test_property_gantt_never_crashes(spans, width):
    trace = PhaseTrace(rank=0)
    for phase, a, b in spans:
        lo, hi = min(a, b), max(a, b)
        trace.record(phase, lo, hi)
    out = render_gantt([trace], width=width)
    assert isinstance(out, str)
    assert out.splitlines()[0].startswith("P0")
