"""Smoke tests: the fast example scripts run end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"

#: Examples fast enough for the test suite (the heavier ones are
#: exercised by the benchmark harness paths they share code with).
FAST_EXAMPLES = [
    "transient_delays.py",
    "window_tuning.py",
    "heat_equation_masking.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script):
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert out.returncode == 0, out.stderr[-2000:]
    assert out.stdout.strip()


def test_all_examples_present():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "nbody_cluster_collision.py",
        "heat_equation_masking.py",
        "transient_delays.py",
        "real_processes.py",
        "oscillator_sync.py",
        "window_tuning.py",
        "when_not_to_speculate.py",
    } <= names
