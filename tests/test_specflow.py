"""Tests for specflow: CFGs, SPF rules, trace events and replay.

Static half: every ``bad_spf*`` fixture in ``tests/specflow_fixtures``
must fire exactly its rule and the ``good_protocol`` fixtures must stay
silent.  Dynamic half: synthetic event logs drive each replay mirror,
and a real two-worker multiprocessing run with injected latency must
produce a trace whose happens-before edges are consistent (matched
sends precede their receives, speculations precede their
verifications).  The differential test records a simulator run and
cross-references it against the static findings over ``src/``.
"""

import json
import pathlib

import pytest

from repro.analysis import (
    SPF_RULES,
    Diagnostic,
    Severity,
    all_spf_codes,
    analyze_paths,
    analyze_source,
    apply_baseline,
    cross_reference,
    fingerprint,
    load_baseline,
    render_sarif,
    replay,
    write_baseline,
)
from repro.analysis.cfg import CallGraph, ModuleGraphs
from repro.analysis.races import build_static_hb, collect_comm_sites
from repro.analysis.replay import build_dynamic_hb, event_key
from repro.cli import main
from repro.parallel import MPRunner
from repro.trace import EventLog, TraceEvent, split_tag

from tests.toy_programs import CoupledIncrement

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = pathlib.Path(__file__).resolve().parent / "specflow_fixtures"
SPL_FIXTURES = pathlib.Path(__file__).resolve().parent / "speclint_fixtures"


def analyze_fixture(name):
    path = FIXTURES / name
    return analyze_source(path.read_text(), path=str(path))


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


# ------------------------------------------------------------ rule registry
def test_spf_registry_catalogue():
    assert all_spf_codes() == ["SPF101", "SPF102", "SPF103", "SPF110", "SPF111"]
    for code, info in SPF_RULES.items():
        assert info.code == code
        assert info.summary
        assert info.severity in (Severity.ERROR, Severity.WARNING)


# ----------------------------------------------------------------- the CFG
def test_cfg_orders_straight_line_code():
    mod = ModuleGraphs.from_source(
        "def f(proc):\n"
        "    a = proc.recv()\n"
        "    proc.send(1, a, tag=('vars', 0))\n"
    )
    cfg = mod.cfgs["f"]
    nodes = list(cfg.stmt_nodes())
    assert cfg.strictly_ordered(nodes[0].uid, nodes[1].uid)
    assert not cfg.strictly_ordered(nodes[1].uid, nodes[0].uid)


def test_cfg_loop_statements_are_unordered():
    mod = ModuleGraphs.from_source(
        "def f(xs):\n"
        "    for x in xs:\n"
        "        a = x + 1\n"
        "        b = a + 1\n"
    )
    cfg = mod.cfgs["f"]
    body = [n for n in cfg.stmt_nodes() if n.label == "assign"]
    # Inside a loop both orders can execute across iterations.
    assert not cfg.strictly_ordered(body[0].uid, body[1].uid)
    assert not cfg.strictly_ordered(body[1].uid, body[0].uid)


def test_cfg_branches_are_unordered():
    mod = ModuleGraphs.from_source(
        "def f(c):\n"
        "    if c:\n"
        "        a = 1\n"
        "    else:\n"
        "        b = 2\n"
    )
    cfg = mod.cfgs["f"]
    arms = [n for n in cfg.stmt_nodes() if n.label == "assign"]
    assert not cfg.strictly_ordered(arms[0].uid, arms[1].uid)
    assert not cfg.strictly_ordered(arms[1].uid, arms[0].uid)


def test_cfg_covers_nested_and_decorated_functions():
    mod = ModuleGraphs.from_source(
        "import functools\n"
        "@functools.lru_cache\n"
        "def outer():\n"
        "    def inner():\n"
        "        async def deepest():\n"
        "            pass\n"
        "    class C:\n"
        "        def method(self):\n"
        "            pass\n"
    )
    assert set(mod.cfgs) == {
        "outer", "outer.inner", "outer.inner.deepest", "outer.C.method",
    }


# -------------------------------------------------------- per-rule fixtures
@pytest.mark.parametrize(
    "fixture, code, count",
    [
        ("bad_spf101_unverified.py", "SPF101", 3),
        ("bad_spf102_unbounded.py", "SPF102", 1),
        ("bad_spf103_descending.py", "SPF103", 1),
        ("bad_spf110_orphan.py", "SPF110", 2),
        ("bad_spf111_race.py", "SPF111", 1),
    ],
)
def test_bad_fixture_fires_exactly_its_rule(fixture, code, count):
    diags = analyze_fixture(fixture)
    assert codes(diags) == [code]
    assert len(diags) == count
    severity = SPF_RULES[code].severity
    assert all(d.severity == severity for d in diags)


def test_good_protocol_fixture_is_clean():
    assert analyze_fixture("good_protocol.py") == []


def test_speclint_good_fixture_is_specflow_clean():
    path = SPL_FIXTURES / "good_protocol.py"
    assert analyze_source(path.read_text(), path=str(path)) == []


def test_select_restricts_rules():
    path = FIXTURES / "bad_spf110_orphan.py"
    src = path.read_text()
    assert codes(analyze_source(src, select=["SPF111"])) == []
    assert codes(analyze_source(src, select=["SPF110"])) == ["SPF110"]


def test_specflow_suppression_directive():
    path = FIXTURES / "bad_spf110_orphan.py"
    src = "# specflow: disable-file=SPF110\n" + path.read_text()
    assert analyze_source(src) == []


def test_syntax_error_yields_spf000():
    diags = analyze_source("def broken(:\n", path="broken.py")
    assert codes(diags) == ["SPF000"]


def test_repo_src_has_no_spf_errors():
    """Whatever the baseline accepts must be warnings, not errors."""
    diags = analyze_paths([str(REPO_ROOT / "src")])
    assert [d for d in diags if d.severity == Severity.ERROR] == []


# ------------------------------------------------------- static HB plumbing
def test_comm_sites_and_hb_graph():
    mod = ModuleGraphs.from_source(
        (FIXTURES / "bad_spf111_race.py").read_text(),
        path="race.py",
    )
    sites = collect_comm_sites(mod)
    assert sorted(s.kind for s in sites) == ["recv", "send", "send"]
    wildcard = [s for s in sites if s.kind == "recv"][0]
    assert wildcard.wildcard_tag and wildcard.wildcard_src
    graph, all_sites = build_static_hb([mod], CallGraph([mod]))
    sends = [s for s in all_sites if s.kind == "send"]
    assert graph.unordered(sends[0].key, sends[1].key)
    # Communication edge: each send happens-before the matching recv.
    assert graph.ordered(sends[0].key, wildcard.key)


# ------------------------------------------------------------- trace events
def test_eventlog_assigns_per_rank_sequence():
    log = EventLog()
    e0 = log.record("send", rank=0, time=0.0, peer=1, family="vars", iteration=0)
    e1 = log.record("compute", rank=0, time=1.0)
    e2 = log.record("recv", rank=1, time=0.5, peer=0, family="vars", iteration=0)
    assert (e0.seq, e1.seq, e2.seq) == (0, 1, 0)
    with pytest.raises(ValueError):
        log.record("teleport", rank=0, time=2.0)


def test_split_tag_families():
    assert split_tag(("vars", 3)) == ("vars", 3)
    assert split_tag(("gather", ("x", 1))) == ("gather", None)
    assert split_tag("barrier-in") == ("barrier-in", None)
    assert split_tag(None) == (None, None)


def test_eventlog_jsonl_roundtrip(tmp_path):
    log = EventLog()
    log.record_message("send", rank=0, time=0.25, peer=1, tag=("vars", 2))
    log.record("speculate", rank=1, time=0.5, peer=0, iteration=2, family="vars")
    path = tmp_path / "trace.jsonl"
    log.save(path)
    loaded = EventLog.load(path)
    assert sorted(loaded.events) == sorted(log.events)
    assert loaded.ranks() == [0, 1]
    # Appending after load continues each rank's sequence.
    nxt = loaded.record("verify", rank=1, time=1.0, peer=0, iteration=2)
    assert nxt.seq == 1


# ---------------------------------------------------------- replay mirrors
def _msg(log, src, dst, iteration, *, recv=True):
    log.record("send", rank=src, time=0.0, peer=dst, family="vars",
               iteration=iteration)
    if recv:
        log.record("recv", rank=dst, time=0.0, peer=src, family="vars",
                   iteration=iteration)


def test_replay_clean_log_has_no_findings():
    log = EventLog()
    _msg(log, 0, 1, 0)
    log.record("speculate", rank=1, time=0.0, peer=0, family="vars", iteration=1)
    log.record("verify", rank=1, time=0.0, peer=0, family="vars", iteration=1)
    report = replay(log)
    assert report.findings == []
    assert report.matched_messages == 1


def test_replay_flags_unverified_speculation():
    log = EventLog()
    log.record("speculate", rank=1, time=0.0, peer=0, family="vars", iteration=3)
    report = replay(log)
    assert [f.code for f in report.findings] == ["SPF101"]


def test_replay_flags_stale_speculation():
    log = EventLog()
    log.record("compute", rank=0, time=0.0, iteration=9)
    log.record("speculate", rank=0, time=0.0, peer=1, family="vars", iteration=2)
    log.record("verify", rank=0, time=0.0, peer=1, family="vars", iteration=2)
    report = replay(log, backward_window=4)
    assert [f.code for f in report.findings] == ["SPF102"]
    # A wide-enough window accepts the same trace.
    assert replay(log, backward_window=10).findings == []


def test_replay_flags_descending_corrections():
    log = EventLog()
    log.record("correct", rank=0, time=0.0, peer=1, iteration=5)
    log.record("correct", rank=0, time=0.0, peer=1, iteration=4)
    report = replay(log)
    assert [f.code for f in report.findings] == ["SPF103"]


def test_replay_flags_unmatched_messages():
    log = EventLog()
    _msg(log, 0, 1, 0, recv=False)
    log.record("recv", rank=0, time=0.0, peer=1, family="acks", iteration=0)
    report = replay(log)
    assert [f.code for f in report.findings] == ["SPF110", "SPF110"]
    assert report.unmatched_sends == 1
    assert report.unmatched_recvs == 1


def test_replay_flags_message_overtaking():
    log = EventLog()
    log.record("send", rank=0, time=0.0, peer=1, family="vars", iteration=0)
    log.record("send", rank=0, time=0.0, peer=1, family="vars", iteration=1)
    # Rank 1 sees iteration 1 *before* iteration 0: overtaking.
    log.record("recv", rank=1, time=0.0, peer=0, family="vars", iteration=1)
    log.record("recv", rank=1, time=0.0, peer=0, family="vars", iteration=0)
    report = replay(log)
    assert [f.code for f in report.findings] == ["SPF111"]


# ------------------------------------------------------ differential verdicts
def _diag(code):
    return Diagnostic(
        path="x.py", line=1, col=0, code=code,
        severity=SPF_RULES[code].severity, message="m",
    )


def test_cross_reference_confirmed_and_refuted():
    log = EventLog()
    _msg(log, 0, 1, 0, recv=False)   # unmatched send: SPF110 witnessed
    report, verdicts = cross_reference([_diag("SPF110"), _diag("SPF111")], log)
    by_code = {v.code: v.status for v in verdicts}
    assert by_code["SPF110"] == "confirmed"
    assert by_code["SPF111"] == "refuted"   # sends exercised, no overtaking
    assert report.findings


def test_cross_reference_unobserved():
    log = EventLog()
    log.record("compute", rank=0, time=0.0, iteration=0)
    _, verdicts = cross_reference([_diag("SPF103")], log)
    assert [v.status for v in verdicts] == ["unobserved"]


# ------------------------------------- two-worker ordering regression test
def test_two_worker_trace_records_hb_edges():
    """A delayed message must still yield consistent HB edges.

    With 50 ms injected latency and FW=1 the workers speculate instead
    of blocking; the merged trace must (a) pair every send with its
    receive, (b) order each send strictly before its receive in the
    dynamic happens-before graph, and (c) order every speculation
    before the verification of the same (peer, iteration).
    """
    prog = CoupledIncrement(nprocs=2, iterations=4, coupling=0.2, threshold=0.0)
    runner = MPRunner(prog, fw=1, latency=0.05, record_events=True)
    result = runner.run(timeout=60)
    log = result.event_log()
    assert log.ranks() == [0, 1]
    assert len(log.of_kind("speculate")) > 0   # the delay forced speculation

    graph, report = build_dynamic_hb(log)
    assert report.matched_messages > 0
    assert report.unmatched_sends == 0
    assert report.unmatched_recvs == 0
    from repro.analysis.replay import match_messages

    pairs, _, _ = match_messages(log)
    for send, recv in pairs:
        assert graph.ordered(event_key(send), event_key(recv))
        assert not graph.ordered(event_key(recv), event_key(send))

    for rank in log.ranks():
        events = log.for_rank(rank)
        verified = {
            (ev.peer, ev.iteration): ev.seq
            for ev in events if ev.kind == "verify"
        }
        for ev in events:
            if ev.kind == "speculate":
                key = (ev.peer, ev.iteration)
                assert key in verified, f"speculation never verified: {ev}"
                assert ev.seq < verified[key]

    # The protocol replay finds nothing wrong with a healthy run.
    assert replay(log).findings == []


def test_runs_without_recording_produce_empty_logs():
    prog = CoupledIncrement(nprocs=2, iterations=2)
    result = MPRunner(prog, fw=0).run(timeout=60)
    assert len(result.event_log()) == 0


# ---------------------------------------------- simulator differential run
def test_trace_replay_cross_references_static_findings(tmp_path):
    """Record a simulator run and judge the static findings against it."""
    from repro.harness import run_nbody

    log = EventLog()
    run_nbody(p=2, fw=1, iterations=4, n_particles=40, threshold=0.01,
              event_log=log)
    assert len(log) > 0
    assert set(ev.kind for ev in log) >= {"send", "recv", "compute"}

    # The SPF111 driver-variant race was fixed at the source — the
    # engine refactor left exactly one send site, stamped with
    # per-destination sequence numbers — so the production tree is
    # clean, not baselined.
    static = analyze_paths([str(REPO_ROOT / "src")])
    assert codes(static) == []

    # Cross-referencing still works: take a known-racy fixture's
    # findings and judge them against the healthy recorded run.
    fixture = analyze_fixture("bad_spf111_race.py")
    assert "SPF111" in codes(fixture)
    report, verdicts = cross_reference(fixture, log)
    spf111 = next(v for v in verdicts if v.code == "SPF111")
    # A healthy 2-rank run exercises the send path without overtaking:
    # the static warning is refuted (or, if the netsim reorders,
    # confirmed) — either way the verdict is decisive, not unobserved.
    assert spf111.status in ("confirmed", "refuted")


# --------------------------------------------------------- SARIF + baseline
def test_sarif_document_shape():
    diags = analyze_fixture("bad_spf110_orphan.py")
    doc = json.loads(render_sarif(diags))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"SPL001", "SPF101", "SPF110"} <= rule_ids
    assert [r["ruleId"] for r in run["results"]] == ["SPF110", "SPF110"]
    for res in run["results"]:
        assert res["partialFingerprints"]["speclint/v1"]
        region = res["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_fingerprints_are_line_stable():
    a = Diagnostic("p.py", 10, 0, "SPF110", Severity.ERROR, "msg")
    b = Diagnostic("p.py", 99, 4, "SPF110", Severity.ERROR, "msg")
    c = Diagnostic("p.py", 10, 0, "SPF111", Severity.ERROR, "msg")
    assert fingerprint(a) == fingerprint(b)
    assert fingerprint(a) != fingerprint(c)


def test_baseline_roundtrip(tmp_path):
    diags = analyze_fixture("bad_spf110_orphan.py")
    baseline = tmp_path / "baseline.json"
    assert write_baseline(diags, baseline) == 2
    accepted = load_baseline(baseline)
    assert apply_baseline(diags, accepted) == []
    fresh = _diag("SPF101")
    assert apply_baseline(diags + [fresh], accepted) == [fresh]


def test_checked_in_baseline_covers_src():
    from repro.analysis.baselines import baseline_for

    baseline = REPO_ROOT / ".speclint" / "baselines.json"
    accepted = baseline_for("specflow", baseline)
    diags = analyze_paths([str(REPO_ROOT / "src")])
    assert apply_baseline(diags, accepted) == []


# ------------------------------------------------------------------ the CLI
def test_cli_analyze_exit_codes(capsys):
    assert main(["analyze", str(FIXTURES)]) == 1
    captured = capsys.readouterr()
    for code in all_spf_codes():
        assert code in captured.out
    assert main(["analyze", str(FIXTURES / "good_protocol.py")]) == 0
    assert main(["analyze", "no/such/path.py"]) == 2


def test_cli_analyze_sarif_output(capsys):
    assert main(["analyze", str(FIXTURES / "bad_spf110_orphan.py"),
                 "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"]


def test_cli_analyze_baseline_flow(tmp_path, capsys):
    baseline = tmp_path / "b.json"
    assert main(["analyze", str(FIXTURES), "--write-baseline", str(baseline)]) == 0
    assert main(["analyze", str(FIXTURES), "--baseline", str(baseline)]) == 0
    assert main(["analyze", str(FIXTURES), "--baseline",
                 str(tmp_path / "missing.json")]) == 2


def test_cli_analyze_trace_flags_replay_findings(tmp_path, capsys):
    log = EventLog()
    _msg(log, 0, 1, 0, recv=False)   # leaked message
    trace = tmp_path / "trace.jsonl"
    log.save(trace)
    good = str(FIXTURES / "good_protocol.py")
    assert main(["analyze", good, "--trace", str(trace)]) == 1
    out = capsys.readouterr().out
    assert "SPF110" in out and "trace replay" in out
    assert main(["analyze", good, "--trace", str(tmp_path / "nope.jsonl")]) == 2


def test_cli_lint_and_analyze_share_exit_codes():
    from repro.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE

    assert (EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE) == (0, 1, 2)
    assert main(["lint", "no/such/path.py"]) == EXIT_USAGE
    assert main(["lint", str(SPL_FIXTURES / "good_protocol.py")]) == EXIT_CLEAN
