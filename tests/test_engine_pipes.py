"""PipeTransport unit tests: no busy-wait, sequenced FIFO delivery.

The two protocol-critical properties of the pipe transport:

* blocking receives park in ``select`` (via
  ``multiprocessing.connection.wait``) — a blocked worker burns ~zero
  CPU, unlike the old mailbox's 1e-4 s sleep-poll;
* wire messages are sequence-checked and their delivery stamps floored
  at their per-peer predecessor's, so injected jitter can never
  reorder one peer's ``vars`` conversation (the SPF111 race).
"""

import multiprocessing as mp
import threading
import time

import numpy as np
import pytest

from repro.engine import Recv, TransportError, TryRecv
from repro.engine.pipes import PipeTransport
from repro.parallel import MPRunner

from tests.toy_programs import CoupledIncrement


def make_transport(**kwargs):
    """A transport on one duplex pipe; returns (transport, sender_end)."""
    ours, theirs = mp.Pipe(duplex=True)
    transport = PipeTransport(rank=0, conns={1: ours}, **kwargs)
    return transport, theirs


# --------------------------------------------------------------- no busy-wait
def test_blocking_recv_does_not_spin_while_latency_gated():
    """A receive that waits out an injected-latency stamp must sleep in
    select, not poll: CPU time ≪ wall time."""
    transport, sender = make_transport()
    delay = 0.5
    sender.send((0, time.monotonic() + delay, 1, "payload"))

    cpu0, wall0 = time.process_time(), time.monotonic()
    arrival = transport.recv(Recv(phase="comm", iteration=1))
    wall = time.monotonic() - wall0
    cpu = time.process_time() - cpu0

    assert arrival.payload == "payload"
    assert wall >= delay * 0.9
    # The old sleep-poll mailbox woke 10_000×/s; genuine parking keeps
    # CPU time a small fraction of the wall time spent blocked.
    assert cpu < 0.1 * wall + 0.02, f"spun: cpu={cpu:.3f}s of wall={wall:.3f}s"


def test_blocking_recv_parks_until_bytes_arrive():
    """With nothing buffered the receiver waits for bytes (no deadline),
    wakes promptly when they land, and still burns ~no CPU."""
    transport, sender = make_transport()
    delay = 0.4

    def late_send():
        time.sleep(delay)
        sender.send((0, time.monotonic(), 3, "late"))

    thread = threading.Thread(target=late_send)
    thread.start()
    cpu0, wall0 = time.process_time(), time.monotonic()
    arrival = transport.recv(Recv(phase="comm", iteration=3))
    wall = time.monotonic() - wall0
    cpu = time.process_time() - cpu0
    thread.join()

    assert arrival.iteration == 3
    assert delay * 0.9 <= wall < delay + 0.3
    assert cpu < 0.1 * wall + 0.02, f"spun: cpu={cpu:.3f}s of wall={wall:.3f}s"
    # The blocked span is charged to the receive's phase.
    assert transport.phase_seconds["comm"] == pytest.approx(wall, abs=0.05)


# ------------------------------------------------------- sequenced delivery
def test_wire_sequence_break_raises():
    transport, sender = make_transport()
    sender.send((1, time.monotonic(), 1, "skipped ahead"))
    with pytest.raises(TransportError, match="sequence break"):
        transport.try_recv(TryRecv())


def test_jitter_cannot_reorder_one_peers_stream():
    """SPF111 regression at the transport level: a later message whose
    jittered stamp matured *earlier* must still deliver after its
    predecessor (per-peer FIFO floor)."""
    transport, sender = make_transport()
    now = time.monotonic()
    sender.send((0, now + 0.30, 1, "first"))   # slow copy of X(1)
    sender.send((1, now - 1.00, 2, "second"))  # jitter made X(2) "beat" it
    time.sleep(0.05)

    # X(2) alone is mature, but delivering it would reorder the
    # conversation — the floor holds it behind X(1).
    assert transport.try_recv(TryRecv()) is None

    first = transport.recv(Recv(phase="comm", iteration=1))
    second = transport.recv(Recv(phase="comm", iteration=2))
    assert (first.iteration, first.payload) == (1, "first")
    assert (second.iteration, second.payload) == (2, "second")


def test_latency_and_jitter_validation():
    with pytest.raises(ValueError):
        make_transport(latency=-1.0)
    with pytest.raises(ValueError):
        make_transport(jitter=-0.5)


# ------------------------------------------- end-to-end SPF111 regression
def test_p4_heavy_jitter_stays_exact():
    """The fixed race, end to end: 4 real processes, θ = 0, and jitter
    strong enough to reorder raw delivery stamps many times over.  The
    sequenced FIFO-floored transport must keep every conversation
    ordered, so the run completes (no TransportError, no deadlock)
    and the numerics equal the serial reference bit-for-bit."""
    prog = CoupledIncrement(nprocs=4, iterations=6, coupling=0.2, threshold=0.0)
    result = MPRunner(
        prog, fw=1, latency=0.02, jitter=1.5, seed=11,
    ).run(timeout=120)
    ref = prog.reference_run()
    for rank in range(4):
        np.testing.assert_allclose(result.final_blocks[rank], ref[rank],
                                   atol=1e-12)
