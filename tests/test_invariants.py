"""The invariant registry is the single source of truth.

The registry (:mod:`repro.analysis.invariants`) feeds three consumers:
the runtime :class:`ProtocolSanitizer`, the specmc model checker, and
the documentation.  These tests pin the consistency the tentpole
promises: every id a consumer enumerates is registered, every seat
holds exactly the invariants it claims, and the docs catalogue lists
each one.
"""

import pathlib
import re

import pytest

from repro.analysis.invariants import (
    INVARIANTS,
    SEAT_SANITIZER,
    SEAT_SPECMC,
    invariant_ids,
    require,
    sanitizer_invariant_ids,
    specmc_invariant_ids,
)
from repro.analysis.modelcheck import MUTATIONS, report_dict
from repro.analysis.sanitizer import ProtocolSanitizer

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_registry_is_well_formed():
    assert len(INVARIANTS) == 12
    for invariant_id, inv in INVARIANTS.items():
        assert inv.id == invariant_id
        assert inv.title and inv.summary
        assert inv.kind in ("safety", "liveness")
        assert inv.seats <= {SEAT_SANITIZER, SEAT_SPECMC}
        assert inv.seats, f"{invariant_id} has no seat"
        # ids are kebab-case
        assert re.fullmatch(r"[a-z][a-z-]*[a-z]", invariant_id)


def test_seat_views_partition_the_registry():
    assert set(sanitizer_invariant_ids()) <= set(invariant_ids())
    assert set(specmc_invariant_ids()) <= set(invariant_ids())
    # Every invariant is enforced somewhere.
    assert set(sanitizer_invariant_ids()) | set(specmc_invariant_ids()) == set(
        invariant_ids()
    )


def test_sanitizer_enumerates_registry_seat():
    assert ProtocolSanitizer.INVARIANTS == sanitizer_invariant_ids()


def test_specmc_reports_enumerate_registry_seat():
    doc = report_dict([])
    assert doc["invariants"] == list(specmc_invariant_ids())


def test_mutation_targets_are_registered():
    for mutation in MUTATIONS.values():
        assert mutation.expected_invariant in INVARIANTS


def test_require_rejects_unregistered_ids():
    require("forward-window-bound")  # no raise
    with pytest.raises(KeyError):
        require("totally-made-up")


def test_docs_catalogue_lists_every_invariant():
    protocol_md = (REPO_ROOT / "docs" / "protocol.md").read_text()
    for invariant_id in invariant_ids():
        assert f"`{invariant_id}`" in protocol_md, (
            f"docs/protocol.md invariant catalogue is missing {invariant_id}"
        )


def test_lint_effect_alphabet_matches_engine():
    """SPL008's mirrored alphabet must track the real effect union."""
    from repro.analysis.rules import EFFECT_ALPHABET, IO_EFFECTS, NOTIFY_EFFECTS
    from repro.engine.events import Arrival, Charge, Effect, Recv, Send, TryRecv

    real = {cls.__name__ for cls in Effect}
    assert EFFECT_ALPHABET == real
    assert IO_EFFECTS == {Send.__name__, Recv.__name__, TryRecv.__name__,
                          Charge.__name__}
    assert NOTIFY_EFFECTS == real - IO_EFFECTS
    assert Arrival.__name__ not in EFFECT_ALPHABET  # response, not effect
