"""Tests for the calibrated platform presets."""

import pytest

from repro.netsim import BurstyTraffic, SharedBus
from repro.des import Environment
from repro.platforms import (
    TABLE2_COMM_SECONDS,
    TABLE2_COMP_SECONDS,
    WUSTL_M1,
    two_processor_demo,
    wustl_1994,
)


def test_wustl_spec_gradient():
    plat = wustl_1994(p=16)
    caps = plat.capacities()
    assert caps[0] == pytest.approx(WUSTL_M1)
    assert caps[0] / caps[-1] == pytest.approx(10.0)
    # linear gradient
    diffs = [a - b for a, b in zip(caps, caps[1:])]
    assert all(d == pytest.approx(diffs[0]) for d in diffs)


def test_wustl_subset_takes_fastest():
    full = wustl_1994(p=16).capacities()
    sub = wustl_1994(p=4).capacities()
    assert sub == full[:4]


def test_wustl_p_validation():
    with pytest.raises(ValueError):
        wustl_1994(p=0)
    with pytest.raises(ValueError):
        wustl_1994(p=17)


def test_wustl_cluster_builds_fresh_environments():
    plat = wustl_1994(p=2)
    c1, c2 = plat.cluster(), plat.cluster()
    assert c1.env is not c2.env
    assert c1.size == 2


def test_platform_metadata():
    plat = wustl_1994(p=3)
    assert plat.nprocs == 3
    assert "wustl" in plat.name
    assert plat.loads is None


def test_wustl_background_load_option():
    plat = wustl_1994(p=2, background_load=True)
    assert plat.loads is not None and len(plat.loads) == 2


def test_wustl_calibration_against_table2():
    """The calibration targets: compute ~5.83 s and comm ~4.7 s per
    steady iteration at p=16, N=1000, FW=0 (deterministic network)."""
    from repro.apps import NBodyProgram
    from repro.core import run_program
    from repro.nbody import uniform_cube

    plat = wustl_1994(p=16)
    system = uniform_cube(1000, seed=42, softening=0.1)
    prog = NBodyProgram(system, plat.capacities(), iterations=5, dt=0.015)
    res = run_program(prog, plat.cluster(), fw=0)
    b = res.steady_breakdown()
    assert b["compute"] == pytest.approx(TABLE2_COMP_SECONDS, rel=0.05)
    assert b["comm"] == pytest.approx(TABLE2_COMM_SECONDS, rel=0.10)


def test_two_processor_demo_shape():
    plat = two_processor_demo(compute_seconds=2.0, comm_seconds=1.0,
                              ops_per_iteration=1e6)
    assert plat.nprocs == 2
    assert plat.capacities() == [5e5, 5e5]
    with pytest.raises(ValueError):
        two_processor_demo(compute_seconds=0.0)


def test_bursty_traffic_validation():
    with pytest.raises(ValueError):
        BurstyTraffic(base_rate=-1)
    with pytest.raises(ValueError):
        BurstyTraffic(mean_on=0)
    with pytest.raises(ValueError):
        BurstyTraffic(frame_bytes=-1)


def test_bursty_traffic_zero_rates_noop():
    env = Environment()
    bus = SharedBus(env, bandwidth=1000.0)
    BurstyTraffic(base_rate=0.0, burst_rate=0.0).attach(bus)
    done = bus.transfer(100)
    env.run(until=done)
    assert env.now == pytest.approx(0.1)


def test_bursty_traffic_bursts_delay_foreground():
    def completion(with_bursts):
        env = Environment()
        bus = SharedBus(env, bandwidth=1000.0)
        if with_bursts:
            BurstyTraffic(
                base_rate=0.0, burst_rate=200.0, mean_on=50.0, mean_off=0.001,
                frame_bytes=100, seed=4,
            ).attach(bus, until=100.0)

        def fg(env):
            yield env.timeout(1.0)
            yield bus.transfer(2000)
            return env.now

        done = env.process(fg(env))
        return env.run(until=done)

    assert completion(True) > completion(False)


def test_bursty_traffic_deterministic():
    def run_once():
        env = Environment()
        bus = SharedBus(env, bandwidth=500.0)
        BurstyTraffic(base_rate=5.0, burst_rate=100.0, mean_on=2.0,
                      mean_off=3.0, frame_bytes=100, seed=9).attach(bus, until=20.0)

        def fg(env):
            yield env.timeout(5.0)
            yield bus.transfer(1000)
            return env.now

        done = env.process(fg(env))
        return env.run(until=done)

    assert run_once() == run_once()


def test_modern_cluster_preset():
    from repro.platforms import modern_cluster

    plat = modern_cluster(p=4)
    assert plat.nprocs == 4
    caps = plat.capacities()
    assert len(set(caps)) == 1  # homogeneous
    cluster = plat.cluster()
    assert cluster.size == 4
    with pytest.raises(ValueError):
        modern_cluster(p=0)
    with pytest.raises(ValueError):
        modern_cluster(capacity=0)


def test_modern_cluster_speculation_still_pays_for_nbody():
    """Thirty years later the same story holds whenever per-message
    latency rivals per-iteration compute: a fine-grained N-body on a
    switched-gigabit cluster (200 us protocol latency vs ~0.6 ms of
    compute) still gains ~30% from FW=1."""
    from repro.apps import NBodyProgram
    from repro.core import run_program
    from repro.nbody import uniform_cube
    from repro.platforms import modern_cluster

    def run(fw):
        plat = modern_cluster(p=4, capacity=2e9, base_latency=200e-6)
        system = uniform_cube(256, seed=3, softening=0.1)
        prog = NBodyProgram(system, plat.capacities(), 30, dt=0.005, threshold=0.01)
        return run_program(prog, plat.cluster(), fw=fw)

    blocking = run(0).makespan
    speculative = run(1).makespan
    assert speculative < 0.8 * blocking


def test_modern_cluster_cheap_kernels_expose_speculation_overhead():
    """The flip side: for kernels whose per-element speculation/check
    cost rivals the compute cost (Kuramoto: 6 of ~11 ops), the masking
    gain is mostly eaten by the speculation overhead -- the f_spec <<
    f_comp requirement the paper states is a real constraint."""
    from repro.apps import KuramotoProgram
    from repro.core import run_program
    from repro.platforms import modern_cluster

    def run(fw):
        plat = modern_cluster(p=4, capacity=5e7, base_latency=200e-6)
        prog = KuramotoProgram.random(
            4000, plat.capacities(), 30, seed=3, dt=0.01, threshold=0.01
        )
        return run_program(prog, plat.cluster(), fw=fw)

    blocking = run(0).makespan
    speculative = run(1).makespan
    # Still no slower, but the gain is marginal (< 15%).
    assert speculative <= blocking
    assert speculative > 0.85 * blocking
