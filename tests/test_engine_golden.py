"""Golden parity: the engine-seated drivers reproduce the pre-refactor
driver bit-for-bit.

``tests/golden/engine_reseat.json`` was captured (by
``scripts/capture_golden.py``) from the monolithic drivers *before*
the protocol moved into :mod:`repro.engine`.  Every field — makespan
``repr``, per-rank final-block digests, and the full speculation
counters — must match exactly: the refactor changed where the
protocol lives, not what it does.
"""

import json
import pathlib

import numpy as np
import pytest

GOLDEN = json.loads(
    (pathlib.Path(__file__).resolve().parent / "golden" / "engine_reseat.json")
    .read_text()
)

STAT_FIELDS = (
    "rank", "spec_made", "spec_accepted", "spec_rejected", "checks",
    "recomputes", "iterations", "tainted_sends", "messages_sent",
    "messages_received",
)


def summarize(res):
    """Mirror of scripts/capture_golden.py's summary (keep in sync)."""
    return {
        "makespan": repr(float(res.makespan)),
        "iterations": res.iterations,
        "fw": res.fw,
        "final_digest": [
            repr(float(np.asarray(res.final_blocks[r]).sum()))
            for r in sorted(res.final_blocks)
        ],
        "stats": [{f: getattr(s, f) for f in STAT_FIELDS} for s in res.stats],
    }


def run_jacobi(fw, cascade):
    from repro.apps.jacobi import JacobiSolver, diagonally_dominant_system
    from repro.core import run_program
    from repro.netsim import ConstantLatency, DelayNetwork
    from repro.vm import Cluster, uniform_specs

    a, b = diagonally_dominant_system(48, seed=7)
    prog = JacobiSolver(a, b, capacities=[1000.0] * 4, iterations=8,
                        threshold=1e-9)
    cluster = Cluster(
        uniform_specs(4, capacity=1000.0),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(0.4)),
    )
    return run_program(prog, cluster, fw=fw, cascade=cascade)


@pytest.mark.parametrize(
    "case,fw,cascade",
    [
        ("jacobi_fw0", 0, "recompute"),
        ("jacobi_fw1_recompute", 1, "recompute"),
        ("jacobi_fw2_recompute", 2, "recompute"),
        ("jacobi_fw2_none", 2, "none"),
    ],
)
def test_jacobi_matches_pre_refactor_driver(case, fw, cascade):
    assert summarize(run_jacobi(fw, cascade)) == GOLDEN[case]


@pytest.mark.parametrize("case,fw", [("nbody_fw0", 0), ("nbody_fw1", 1)])
def test_nbody_matches_pre_refactor_driver(case, fw):
    from repro.harness import run_nbody

    _, res = run_nbody(4, fw, config={"n_particles": 120, "iterations": 5})
    assert summarize(res) == GOLDEN[case]


def test_nbody_adaptive_matches_pinned_trajectory():
    """The p=4 jittered DES adaptive run is bit-stable: virtual time is
    deterministic, so every rank's WindowChanged trajectory (and the
    stats it steers) must reproduce the pinned golden exactly."""
    from repro.harness import run_nbody
    from repro.policy import AimdWindow

    _, res = run_nbody(
        4, 1,
        config={"n_particles": 120, "iterations": 12},
        window_policy=AimdWindow(epoch=2, min_fw=0, max_fw=3),
    )
    doc = summarize(res)
    doc["window_history"] = [
        [[int(t), int(fw)] for t, fw in history]
        for history in res.window_history
    ]
    doc["final_windows"] = res.final_windows()
    assert doc == GOLDEN["nbody_adaptive"]
    # The trajectory is only interesting if adaptation actually fired.
    assert any(len(h) > 1 for h in res.window_history)


# ---------------------------------------------- the --check drift guard
def _load_capture_golden_module():
    import importlib.util

    path = (pathlib.Path(__file__).resolve().parent.parent
            / "scripts" / "capture_golden.py")
    spec = importlib.util.spec_from_file_location("capture_golden", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_mode_drift_report():
    """scripts/capture_golden.py --check reports drift field by field
    (CI runs the full recompute; this pins the diffing itself)."""
    mod = _load_capture_golden_module()
    pinned = {"case_a": {"makespan": "1.0", "fw": 1},
              "case_b": {"makespan": "2.0", "fw": 2}}
    same = {k: dict(v) for k, v in pinned.items()}
    assert mod.drift_report(pinned, same) == []

    moved = {"case_a": {"makespan": "1.5", "fw": 1},
             "case_c": {"makespan": "3.0", "fw": 0}}
    report = mod.drift_report(pinned, moved)
    assert any("case_a.makespan" in line for line in report)
    assert any(line.startswith("case_b:") for line in report)  # missing
    assert any(line.startswith("case_c:") for line in report)  # extra


def test_check_mode_golden_file_matches_capture_layout():
    """The pinned file and the capture script agree on the case set, so
    --check diffs the same eight scenarios this suite replays."""
    mod = _load_capture_golden_module()
    assert mod.DEFAULT_GOLDEN.resolve() == (
        pathlib.Path(__file__).resolve().parent / "golden"
        / "engine_reseat.json"
    )
    assert set(GOLDEN) == {
        "jacobi_fw0", "jacobi_fw1_recompute", "jacobi_fw2_recompute",
        "jacobi_fw2_none", "nbody_fw0", "nbody_fw1", "nbody_fw2",
        "nbody_adaptive",
    }
    for name, case in GOLDEN.items():
        expected = {"makespan", "iterations", "fw", "final_digest", "stats"}
        if name == "nbody_adaptive":
            expected |= {"window_history", "final_windows"}
        assert set(case) == expected
        for stat in case["stats"]:
            assert set(stat) == set(STAT_FIELDS)
