"""Unit tests for the virtual machine substrate."""

from dataclasses import FrozenInstanceError

import pytest

from repro.netsim import BusNetwork, ConstantLatency, DelayNetwork, SharedBus
from repro.vm import (
    Cluster,
    ConstantSlowdown,
    ProcessorSpec,
    RandomWalkLoad,
    linear_gradient_specs,
    uniform_specs,
)
from repro.vm.message import Message, payload_nbytes
from repro.vm.specs import total_capacity

import numpy as np


# ------------------------------------------------------------------- specs
def test_spec_seconds_for():
    s = ProcessorSpec("x", capacity=100.0)
    assert s.seconds_for(250.0) == 2.5


def test_spec_validation():
    with pytest.raises(ValueError):
        ProcessorSpec("x", capacity=0)
    with pytest.raises(ValueError):
        ProcessorSpec("x", capacity=100).seconds_for(-1)


def test_linear_gradient_specs_paper_shape():
    specs = linear_gradient_specs(p=16, fastest=120e6, ratio=10.0)
    caps = [s.capacity for s in specs]
    assert caps[0] == pytest.approx(120e6)
    assert caps[-1] == pytest.approx(12e6)
    # linear: constant differences
    diffs = [a - b for a, b in zip(caps, caps[1:])]
    assert all(d == pytest.approx(diffs[0]) for d in diffs)


def test_linear_gradient_single_processor():
    specs = linear_gradient_specs(p=1, fastest=100.0)
    assert len(specs) == 1
    assert specs[0].capacity == 100.0


def test_linear_gradient_validation():
    with pytest.raises(ValueError):
        linear_gradient_specs(p=0)
    with pytest.raises(ValueError):
        linear_gradient_specs(p=4, ratio=0.5)


def test_uniform_specs():
    specs = uniform_specs(3, capacity=5.0)
    assert [s.capacity for s in specs] == [5.0, 5.0, 5.0]
    with pytest.raises(ValueError):
        uniform_specs(0)


def test_total_capacity():
    specs = uniform_specs(4, capacity=2.0)
    assert total_capacity(specs) == 8.0


# ------------------------------------------------------------------- loads
def test_constant_slowdown():
    assert ConstantSlowdown(1.5).slowdown(0.0) == 1.5
    with pytest.raises(ValueError):
        ConstantSlowdown(0.5)


def test_random_walk_load_bounds_and_determinism():
    a = RandomWalkLoad(mean=0.2, step=0.1, seed=5)
    b = RandomWalkLoad(mean=0.2, step=0.1, seed=5)
    sa = [a.slowdown(t) for t in np.linspace(0, 100, 200)]
    sb = [b.slowdown(t) for t in np.linspace(0, 100, 200)]
    assert sa == sb
    assert all(1.0 <= s <= 3.0 for s in sa)


def test_random_walk_load_validation():
    with pytest.raises(ValueError):
        RandomWalkLoad(interval=0)
    with pytest.raises(ValueError):
        RandomWalkLoad(reversion=2.0)
    with pytest.raises(ValueError):
        RandomWalkLoad(mean=-0.1)
    with pytest.raises(ValueError):
        RandomWalkLoad().slowdown(-1.0)


def test_random_walk_piecewise_constant_within_interval():
    m = RandomWalkLoad(interval=10.0, seed=1)
    assert m.slowdown(1.0) == m.slowdown(9.9)


# ---------------------------------------------------------------- messages
def test_payload_nbytes_numpy():
    arr = np.zeros(10, dtype=np.float64)
    assert payload_nbytes(arr) == 80


def test_payload_nbytes_containers():
    assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 16 + 24 + 16
    assert payload_nbytes({"a": 1.0}) > 0
    assert payload_nbytes(None) == 8
    assert payload_nbytes(b"xyz") == 3


def test_message_latency_and_matching():
    m = Message(src=0, dst=1, tag="t", payload=None, nbytes=8, sent_at=1.0)
    with pytest.raises(ValueError):
        _ = m.latency
    m.mark_delivered(3.0)
    assert m.latency == 2.0
    assert m.matches()
    assert m.matches(src=0, tag="t")
    assert not m.matches(src=1)
    assert not m.matches(tag="other")


def test_message_is_frozen_and_delivered_once():
    m = Message(src=0, dst=1, tag="t", payload=None, nbytes=8, sent_at=1.0)
    with pytest.raises(FrozenInstanceError):
        m.payload = "swapped"
    with pytest.raises(FrozenInstanceError):
        m.delivered_at = 3.0
    with pytest.raises(ValueError):
        m.mark_delivered(0.5)  # before the send
    m.mark_delivered(2.0)
    with pytest.raises(ValueError):
        m.mark_delivered(4.0)  # double delivery


# ----------------------------------------------------------------- cluster
def test_cluster_compute_time_scales_with_capacity():
    cluster = Cluster([ProcessorSpec("fast", 100.0), ProcessorSpec("slow", 10.0)])

    def program(proc):
        yield from proc.compute(100.0)
        return proc.env.now

    results = cluster.run(program)
    assert results == [pytest.approx(1.0), pytest.approx(10.0)]


def test_cluster_background_load_slows_compute():
    cluster = Cluster(
        uniform_specs(1, capacity=100.0),
        loads=[ConstantSlowdown(2.0)],
    )

    def program(proc):
        yield from proc.compute(100.0)
        return proc.env.now

    assert cluster.run(program) == [pytest.approx(2.0)]


def test_send_recv_roundtrip_with_latency():
    cluster = Cluster(
        uniform_specs(2, capacity=1e6),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(0.5)),
    )

    def program(proc):
        if proc.rank == 0:
            proc.send(1, {"x": 42}, tag="data")
            return None
        msg = yield from proc.recv(src=0, tag="data")
        return (proc.env.now, msg.payload["x"], msg.latency)

    results = cluster.run(program)
    assert results[1] == (0.5, 42, 0.5)


def test_recv_traces_comm_time():
    cluster = Cluster(
        uniform_specs(2, capacity=1e6),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(2.0)),
    )

    def program(proc):
        if proc.rank == 0:
            proc.send(1, "hi")
        else:
            yield from proc.recv(src=0)
        if False:
            yield  # make rank 0 a generator too

    cluster.run(program)
    assert cluster.processor(1).trace.total("comm") == pytest.approx(2.0)


def test_try_recv_and_probe_nonblocking():
    cluster = Cluster(uniform_specs(2, capacity=1e6))

    def program(proc):
        if proc.rank == 0:
            assert proc.try_recv() is None
            assert not proc.probe()
            proc.send(1, "x", tag="a")
            yield from proc.advance(1.0, phase="idle")
        else:
            yield from proc.advance(0.5, phase="idle")
            assert proc.probe(src=0, tag="a")
            assert not proc.probe(src=0, tag="b")
            msg = proc.try_recv(src=0, tag="a")
            assert msg is not None and msg.payload == "x"
            assert proc.try_recv(src=0, tag="a") is None
            return "ok"

    results = cluster.run(program)
    assert results[1] == "ok"


def test_broadcast_reaches_all_other_ranks():
    cluster = Cluster(uniform_specs(4, capacity=1e6))

    def program(proc):
        if proc.rank == 0:
            events = proc.broadcast("ping", tag="b")
            assert len(events) == 3
            if False:
                yield
            return None
        msg = yield from proc.recv(src=0, tag="b")
        return msg.payload

    results = cluster.run(program)
    assert results[1:] == ["ping", "ping", "ping"]


def test_selective_recv_by_tag_order_independent():
    cluster = Cluster(uniform_specs(2, capacity=1e6))

    def program(proc):
        if proc.rank == 0:
            proc.send(1, "first", tag=("vars", 0))
            proc.send(1, "second", tag=("vars", 1))
            if False:
                yield
            return None
        # receive iteration 1 first even though 0 arrived earlier
        m1 = yield from proc.recv(src=0, tag=("vars", 1))
        m0 = yield from proc.recv(src=0, tag=("vars", 0))
        return (m1.payload, m0.payload)

    results = cluster.run(program)
    assert results[1] == ("second", "first")


def test_send_invalid_rank_rejected():
    cluster = Cluster(uniform_specs(2, capacity=1e6))

    def program(proc):
        if proc.rank == 0:
            with pytest.raises(ValueError):
                proc.send(5, "x")
        if False:
            yield
        return None

    cluster.run(program)


def test_cluster_run_until_timeout():
    cluster = Cluster(uniform_specs(1, capacity=1.0))

    def program(proc):
        yield from proc.compute(100.0)  # needs 100s

    with pytest.raises(TimeoutError):
        cluster.run(program, until=5.0)


def test_cluster_bus_network_integration():
    def make_net(env):
        return BusNetwork(env, SharedBus(env, bandwidth=100.0))

    cluster = Cluster(uniform_specs(3, capacity=1e9), network_factory=make_net)

    def program(proc):
        if proc.rank == 0:
            proc.send(1, None, nbytes=100, tag="x")  # 1s wire
            proc.send(2, None, nbytes=100, tag="x")  # queues: arrives at 2s
            if False:
                yield
            return None
        msg = yield from proc.recv(src=0, tag="x")
        return proc.env.now

    results = cluster.run(program)
    assert results[1] == pytest.approx(1.0)
    assert results[2] == pytest.approx(2.0)


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster([])
    with pytest.raises(ValueError):
        Cluster(uniform_specs(2), loads=[None])


def test_cluster_accessors():
    cluster = Cluster(uniform_specs(3, capacity=7.0))
    assert cluster.size == 3
    assert cluster.capacities() == [7.0, 7.0, 7.0]
    assert cluster.processor(1).rank == 1
    assert len(cluster.traces()) == 3


def test_advance_validation():
    cluster = Cluster(uniform_specs(1))

    def program(proc):
        with pytest.raises(ValueError):
            # consume generator to trigger validation
            list(proc.advance(-1.0))
        if False:
            yield
        return None

    cluster.run(program)
