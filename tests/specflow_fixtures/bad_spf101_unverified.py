"""Fixture: SPF101 — unverified speculated value reaches a commit.

``guess`` is produced by a speculator and committed to another rank
without any path passing it through ``check``/``verify`` first.  The
interprocedural variant launders the value through a helper whose
summary says "returns unverified speculation".
"""

VARS = "vars"


def direct(proc, t, history):
    guess = speculate(history, t)
    proc.send(1, guess, tag=(VARS, t))        # SPF101: never verified


def produce(history, t):
    return extrapolate(history, t)


def interprocedural(proc, t, history):
    estimate = produce(history, t)
    proc.broadcast(estimate, tag=(VARS, t))   # SPF101: via summary


def one_path_unchecked(proc, t, history, lucky):
    guess = speculate(history, t)
    if lucky:
        actual = proc.recv(src=0, tag=(VARS, t))
        guess = check(guess, actual)
    proc.send(1, guess, tag=(VARS, t))        # SPF101: else-path unchecked
