"""Fixture: SPF110 — tag families nobody answers.

The ``acks`` family is sent but no receive anywhere can match it
(message leak); the ``ctrl`` family is received but never sent
(guaranteed deadlock on that path).
"""

ACKS = "acks"
CTRL = "ctrl"
VARS = "vars"


def send_only(proc, value, t):
    proc.send(1, value, tag=(ACKS, t))         # SPF110: never received


def recv_only(proc, t):
    return proc.recv(src=0, tag=(CTRL, t))     # SPF110: never sent


def balanced(proc, value, t):
    proc.send(1, value, tag=(VARS, t))
    return proc.recv(src=1, tag=(VARS, t))
