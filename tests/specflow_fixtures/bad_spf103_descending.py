"""Fixture: SPF103 — correction cascade applied newest-first.

Repairing iteration ``t`` recomputes from the state at ``t - 1``; a
descending sweep therefore recomputes later iterations from state the
sweep has not repaired yet.  The cascade must run oldest-first.
"""


def repair(state, rejected):
    for t in reversed(sorted(rejected)):
        correct(state, t)                      # SPF103: descending cascade
