"""Fixture: a disciplined protocol body specflow must accept.

Speculations are verified before commit, the history is trimmed to the
backward window, corrections cascade oldest-first, every tag family is
both sent and received, and receives name their tag + source.
"""

VARS = "vars"
BW = 4


def step(proc, t, history):
    guess = speculate(history, t)
    actual = proc.recv(src=0, tag=(VARS, t))
    guess = check(guess, actual)
    proc.send(1, guess, tag=(VARS, t))
    history.append(actual)
    del history[:-BW]
    return guess


def repair(state, rejected):
    for t in sorted(rejected):
        correct(state, t)
