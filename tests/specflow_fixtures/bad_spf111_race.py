"""Fixture: SPF111 — unordered same-family sends at a wildcard receive.

``send_state`` and ``send_late_update`` are never ordered by program
order, calls or messages, yet both emit the ``vars`` family — and
``drain`` receives with no tag at all, so which message it consumes
depends purely on delivery timing.
"""

VARS = "vars"


def send_state(proc, state, t):
    proc.send(1, state, tag=(VARS, t))         # SPF111: races with below


def send_late_update(proc, update, t):
    proc.send(1, update, tag=(VARS, t + 1))    # SPF111: races with above


def drain(proc):
    return proc.recv()                         # wildcard: matches either
