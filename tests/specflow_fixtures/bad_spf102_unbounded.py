"""Fixture: SPF102 — untrimmed history feeds the speculator.

``history`` grows every iteration and is never trimmed to the
backward window, so the extrapolation can consume values arbitrarily
older than the window the protocol promises.
"""

VARS = "vars"


def run(proc, steps):
    history = []
    for t in range(steps):
        history.append(proc.recv(src=0, tag=(VARS, t)))
        guess = extrapolate(history)           # SPF102: unbounded input
        proc.send(1, check(guess, history[-1]), tag=(VARS, t))
