"""Loopback-transport tests: protocol logic with no clock at all.

The round-robin scheduler itself produces speculative executions
(a rank scheduled ahead of its peers speculates their late inputs),
so these tests exercise the full speculate/verify/correct path of
the shared :class:`~repro.engine.core.SpecEngine` in microseconds,
and check the loopback backend agrees with the serial reference.
"""

import numpy as np
import pytest

from repro.engine import LoopbackDeadlock, LoopbackRunner, run_loopback
from repro.engine.events import Recv
from repro.trace import EventLog

from tests.toy_programs import CoupledIncrement, RandomDrift


def assert_matches_reference(prog, finals):
    ref = prog.reference_run()
    for rank in range(prog.nprocs):
        np.testing.assert_allclose(finals[rank], ref[rank], atol=1e-12)


# ------------------------------------------------------------------ numerics
@pytest.mark.parametrize("fw", [0, 1])
def test_loopback_exact_for_fw0_and_strict_fw1(fw):
    """fw=0 never speculates; fw=1 with theta=0 verifies every
    speculation exactly — both must equal the serial recurrence."""
    prog = CoupledIncrement(nprocs=3, iterations=7, coupling=0.3, threshold=0.0)
    finals, stats, _ = run_loopback(prog, fw=fw)
    assert_matches_reference(prog, finals)
    if fw == 0:
        assert all(s.spec_made == 0 for s in stats)


def test_loopback_receive_driven_matches_spec_engine():
    """The receive-driven baseline and the speculative engine agree
    on an incremental program (nbody implements begin/absorb/finish)."""
    from repro.apps.nbody_app import NBodyProgram
    from repro.nbody import uniform_cube

    system = uniform_cube(24, seed=42, softening=0.1)
    prog = NBodyProgram(system, [1.0, 1.0], iterations=3, dt=0.015,
                        threshold=0.01)
    spec, _, _ = run_loopback(prog, fw=0)
    base, _, _ = run_loopback(prog, receive_driven=True)
    for rank in range(2):
        np.testing.assert_allclose(spec[rank], base[rank], atol=1e-12)


# ------------------------------------------------------------- speculation
def test_round_robin_schedule_produces_speculation():
    """A constant state is predicted perfectly by a zero-order hold:
    speculations happen and every one is accepted."""
    from repro.core import ZeroOrderHold

    prog = CoupledIncrement(
        nprocs=3, iterations=8, coupling=0.0, rates=[0.0, 0.0, 0.0],
        threshold=0.0, speculator=ZeroOrderHold(),
    )
    finals, stats, _ = run_loopback(prog, fw=2)
    assert_matches_reference(prog, finals)
    made = sum(s.spec_made for s in stats)
    assert made > 0
    assert sum(s.spec_rejected for s in stats) == 0
    assert sum(s.spec_accepted for s in stats) == made


def test_rejection_and_correction_on_unpredictable_program():
    """RandomDrift defeats extrapolation; rejected speculations must
    be corrected so the final state still matches the reference."""
    prog = RandomDrift(nprocs=2, iterations=6, coupling=0.1, threshold=0.0)
    finals, stats, _ = run_loopback(prog, fw=1)
    assert_matches_reference(prog, finals)
    assert sum(s.spec_rejected for s in stats) > 0
    assert sum(s.recomputes for s in stats) > 0


# ----------------------------------------------------------- observability
def test_phase_ops_tallied_per_rank():
    prog = CoupledIncrement(nprocs=2, iterations=4)
    _, _, runner = run_loopback(prog, fw=1)
    for rank in range(2):
        assert runner.phase_ops[rank].get("compute", 0.0) > 0.0


def test_event_log_records_protocol_kinds():
    log = EventLog()
    prog = CoupledIncrement(nprocs=3, iterations=6, coupling=0.0)
    run_loopback(prog, fw=2, event_log=log)
    kinds = {e.kind for e in log}
    assert {"send", "recv", "compute", "speculate", "verify"} <= kinds
    # The step-counter logical clock is monotone along each rank's
    # program order (seq), so the trace replays deterministically.
    for rank in range(3):
        per_rank = sorted((e for e in log if e.rank == rank),
                          key=lambda e: e.seq)
        times = [e.time for e in per_rank]
        assert times == sorted(times)


# --------------------------------------------------------------- deadlock
class _StuckEngine:
    """Fake engine blocking forever on a message nobody will send."""

    def run(self):
        yield Recv(phase="comm", iteration=99, match=("vars", 99))
        raise AssertionError("unreachable")  # pragma: no cover


def test_deadlock_detected_not_hung():
    with pytest.raises(LoopbackDeadlock, match="blocked receives"):
        LoopbackRunner({0: _StuckEngine()}).run()


def test_runner_rejects_empty_engine_map():
    with pytest.raises(ValueError):
        LoopbackRunner({})
