"""Tests for spectaint: the taint lattice, the SPT rule pack,
commit-point annotations, trace-replay verdicts, consolidated
baselines and the ``repro taint`` / ``repro check`` CLIs."""

import json
from pathlib import Path

import pytest

from repro.analysis import cfg
from repro.analysis.baselines import (
    SCHEMA_VERSION,
    baseline_for,
    legacy_baseline_path,
    load_baselines,
    migrate_baselines,
    save_baselines,
    set_baseline,
)
from repro.analysis.cfg import CallGraph, ModuleGraphs
from repro.analysis.diagnostics import SPT_RULES, Severity, all_spt_codes
from repro.analysis.linter import parse_suppressions
from repro.analysis.program import ProgramIndex
from repro.analysis.sarif import fingerprint
from repro.analysis.taint import (
    CONFIRMED,
    REFUTED,
    UNOBSERVED,
    analyze_modules,
    analyze_paths,
    analyze_source,
    check_taint,
    commit_lines_of,
    commits,
    compute_taint_summaries,
    declared_commit_points,
    find_escapes,
    is_commit_point,
    rule_catalogue,
    unconfirmed,
)
from repro.analysis.taint.lattice import COMMITTED, SPEC
from repro.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.trace.events import EventLog

FIXTURES = Path(__file__).parent / "spectaint_fixtures"
SRC = Path(__file__).parent.parent / "src"

ALL_CODES = [f"SPT30{i}" for i in range(1, 9)]


def _codes_of(path):
    return [d.code for d in analyze_paths([path])]


def _modules(*sources):
    return [
        ModuleGraphs.from_source(src, path=f"<m{i}>")
        for i, src in enumerate(sources)
    ]


# --------------------------------------------------------------- registry


def test_all_spt_rules_registered():
    assert all_spt_codes() == ALL_CODES
    assert set(rule_catalogue()) == set(ALL_CODES)
    for code in ALL_CODES:
        expected = Severity.WARNING if code == "SPT308" else Severity.ERROR
        assert SPT_RULES[code].severity is expected


# ---------------------------------------------------------------- lattice


def test_unconfirmed_is_spec_without_committed():
    assert unconfirmed(frozenset({SPEC}))
    assert not unconfirmed(frozenset({SPEC, COMMITTED}))
    assert not unconfirmed(frozenset())


def test_commit_lines_of_finds_directive():
    source = "x = 1\ny = guess  # spectaint: commit — justified\nz = 2\n"
    assert commit_lines_of(source) == frozenset({2})


def test_declared_commit_points_finds_decorator():
    modules = _modules(
        "def commits(f):\n    return f\n\n"
        "@commits\ndef adopt(store, v):\n    store.x = v\n"
    )
    assert ("<m0>", "adopt") in declared_commit_points(modules)


def test_commits_decorator_marks_function():
    @commits
    def adopt(value):
        return value

    assert is_commit_point(adopt)
    assert adopt(3) == 3  # the wrapper is the function itself

    def plain(value):
        return value

    assert not is_commit_point(plain)


def test_summaries_propagate_returns_and_sinks():
    modules = _modules(
        "def emit(value):\n    print(value)\n\n"
        "def relay(value):\n    emit(value)\n\n"
        "def make(history):\n    return speculate(history)\n"
    )
    summaries = compute_taint_summaries(CallGraph(modules), frozenset(), {})
    assert summaries[("<m0>", "make")].returns_spec
    assert summaries[("<m0>", "emit")].sink_params == {0: "SPT301"}
    # The sink taints relay's parameter transitively.
    assert summaries[("<m0>", "relay")].sink_params == {0: "SPT301"}


# --------------------------------------------------------------- fixtures


@pytest.mark.parametrize(
    "name, code, count",
    [
        ("bad_spt301_io.py", "SPT301", 2),
        ("bad_spt302_send.py", "SPT302", 2),
        ("bad_spt303_store.py", "SPT303", 2),
        ("bad_spt304_commit.py", "SPT304", 1),
        ("bad_spt305_order.py", "SPT305", 1),
        ("bad_spt306_raise.py", "SPT306", 1),
        ("bad_spt307_alias.py", "SPT307", 2),
        ("bad_spt308_dead_rollback.py", "SPT308", 1),
    ],
)
def test_each_bad_fixture_fires_only_its_rule(name, code, count):
    codes = _codes_of(FIXTURES / name)
    assert codes == [code] * count


def test_interprocedural_escape_through_two_calls():
    diags = analyze_paths([FIXTURES / "bad_interproc_chain.py"])
    assert [d.code for d in diags] == ["SPT301"]
    # The finding lands on the call in `produce`, where the taint enters
    # the chain — not inside `emit`, which is clean in isolation.
    assert diags[0].line == 21
    assert "relay" in diags[0].message


def test_aliasing_fixture_catches_both_mutations():
    diags = analyze_paths([FIXTURES / "bad_spt307_alias.py"])
    lines = sorted(d.line for d in diags)
    assert len(lines) == 2 and lines[0] != lines[1]


@pytest.mark.parametrize(
    "name",
    ["good_commit_point.py", "good_confirmed.py", "good_reclaimed_ledger.py"],
)
def test_good_fixtures_are_clean(name):
    assert _codes_of(FIXTURES / name) == []


def test_whole_fixture_dir_fires_every_rule():
    codes = {d.code for d in analyze_paths([FIXTURES])}
    assert codes == set(ALL_CODES)


def test_select_restricts_rules():
    diags = analyze_paths([FIXTURES], select=["SPT302"])
    assert {d.code for d in diags} == {"SPT302"}


def test_commit_line_directive_sanctions_a_sink():
    clean = (
        "def step(history):\n"
        "    guess = speculate(history)\n"
        "    print(guess)  # spectaint: commit — confirmed upstream\n"
    )
    assert analyze_source(clean, path="<t>") == []
    dirty = clean.replace("  # spectaint: commit — confirmed upstream", "")
    assert [d.code for d in analyze_source(dirty, path="<t>")] == ["SPT301"]


def test_suppression_directive_silences_a_finding():
    source = (
        "def step(history):\n"
        "    guess = speculate(history)\n"
        "    print(guess)  # spectaint: disable=SPT301\n"
    )
    assert analyze_source(source, path="<t>") == []


def test_syntax_error_yields_spt000():
    diags = analyze_source("def broken(:\n", path="<t>")
    assert [d.code for d in diags] == ["SPT000"]


def test_src_tree_is_clean():
    assert analyze_paths([SRC]) == []


def test_analysis_is_deterministic_over_fixtures():
    first = analyze_paths([FIXTURES])
    second = analyze_paths([FIXTURES])
    assert first == second


# ----------------------------------------------------- multi-tool parsing


def test_suppression_parser_accepts_all_four_spellings():
    source = (
        "a = 1  # speclint: disable=SPL101\n"
        "b = 2  # specflow: disable=SPF201\n"
        "c = 3  # specperf: disable=SPP203\n"
        "d = 4  # spectaint: disable=SPT301\n"
        "# specperf: disable-file=SPP204\n"
    )
    per_line, file_wide = parse_suppressions(source)
    assert per_line == {
        1: {"SPL101"},
        2: {"SPF201"},
        3: {"SPP203"},
        4: {"SPT301"},
    }
    assert file_wide == {"SPP204"}


def test_one_directive_suppresses_codes_across_families():
    # One spelling may carry any family's ids: a single directive on the
    # offending line silences both the speclint and the spectaint finding.
    source = (
        "def step(history):\n"
        "    guess = speculate(history)\n"
        "    print(guess)  # speclint: disable=SPT301, SPF202\n"
    )
    per_line, _ = parse_suppressions(source)
    assert per_line == {3: {"SPT301", "SPF202"}}
    assert analyze_source(source, path="<t>") == []


# ---------------------------------------------------------------- verdicts


def _escape_log():
    log = EventLog()
    log.record("speculate", rank=0, time=1.0, family="vars", iteration=3)
    log.record("send", rank=0, time=2.0, peer=1, family="vars", iteration=3)
    log.record("verify", rank=0, time=3.0, family="vars", iteration=3)
    return log


def _clean_log():
    log = EventLog()
    log.record("speculate", rank=0, time=1.0, family="vars", iteration=3)
    log.record("verify", rank=0, time=2.0, family="vars", iteration=3)
    log.record("send", rank=0, time=3.0, peer=1, family="vars", iteration=3)
    return log


def test_find_escapes_flags_send_in_open_window():
    witnesses = find_escapes(_escape_log())
    assert len(witnesses) == 1
    assert witnesses[0].rank == 0 and witnesses[0].open_specs == 1
    assert "vars@3" in witnesses[0].format_text()


def test_find_escapes_clean_ordering_has_no_witness():
    assert find_escapes(_clean_log()) == []


def test_windows_are_per_rank():
    log = EventLog()
    log.record("speculate", rank=0, time=1.0, family="vars", iteration=1)
    # Rank 1's send is not covered by rank 0's open window.
    log.record("send", rank=1, time=2.0, peer=0, family="vars", iteration=1)
    assert find_escapes(log) == []


def test_check_taint_escape_verdicts():
    diags = analyze_paths([FIXTURES / "bad_spt301_io.py"])
    confirmed = check_taint(diags, _escape_log())
    assert {v.status for v in confirmed} == {CONFIRMED}
    assert "escape witness" in confirmed[0].detail

    refuted = check_taint(diags, _clean_log())
    assert {v.status for v in refuted} == {REFUTED}

    unobserved = check_taint(diags, EventLog())
    assert {v.status for v in unobserved} == {UNOBSERVED}


def test_check_taint_spt308_semantics():
    diags = analyze_paths([FIXTURES / "bad_spt308_dead_rollback.py"])
    assert [d.code for d in diags] == ["SPT308"]

    corrected = EventLog()
    corrected.record("speculate", rank=0, time=1.0, family="vars", iteration=1)
    corrected.record("correct", rank=0, time=2.0, family="vars", iteration=1)
    assert [v.status for v in check_taint(diags, corrected)] == [REFUTED]

    # speculate+verify but never correct: consistent with a dead handler.
    assert [v.status for v in check_taint(diags, _clean_log())] == [CONFIRMED]
    assert [v.status for v in check_taint(diags, EventLog())] == [UNOBSERVED]


def test_verdict_text_and_dict_shape():
    diags = analyze_paths([FIXTURES / "bad_spt301_io.py"])
    verdict = check_taint(diags, _escape_log())[0]
    assert verdict.format_text().startswith("taint-verdict SPT301 @ ")
    assert verdict.to_dict()["status"] == CONFIRMED


# --------------------------------------------------------------- baselines


def test_baselines_v2_round_trip(tmp_path):
    target = tmp_path / "baselines.json"
    accepted = {"spectaint": frozenset({"abc123"}), "specflow": frozenset()}
    save_baselines(accepted, target)
    payload = json.loads(target.read_text())
    assert payload["version"] == SCHEMA_VERSION
    assert load_baselines(target) == accepted


def test_load_baselines_rejects_wrong_version(tmp_path):
    target = tmp_path / "baselines.json"
    target.write_text('{"version": 1, "fingerprints": []}')
    with pytest.raises(ValueError, match="version"):
        load_baselines(target)


def test_set_baseline_preserves_other_tools(tmp_path):
    target = tmp_path / "baselines.json"
    set_baseline("specflow", frozenset({"aaa"}), target)
    set_baseline("spectaint", frozenset({"bbb"}), target)
    assert load_baselines(target) == {
        "specflow": frozenset({"aaa"}),
        "spectaint": frozenset({"bbb"}),
    }


def test_baseline_for_falls_back_to_legacy_with_warning(tmp_path, capsys):
    consolidated = tmp_path / "baselines.json"
    legacy = legacy_baseline_path("spectaint", tmp_path)
    legacy.write_text('{"fingerprints": ["fff"]}')
    assert baseline_for("spectaint", consolidated) == frozenset({"fff"})
    assert "deprecated" in capsys.readouterr().err


def test_migrate_baselines_merges_and_deletes_legacy(tmp_path):
    target = tmp_path / "baselines.json"
    for tool, fp in (("specflow", "aaa"), ("specperf", "bbb")):
        legacy_baseline_path(tool, tmp_path).write_text(
            json.dumps({"fingerprints": [fp]})
        )
    actions = migrate_baselines(target)
    assert len(actions) == 2
    assert not legacy_baseline_path("specflow", tmp_path).exists()
    assert load_baselines(target) == {
        "specflow": frozenset({"aaa"}),
        "specperf": frozenset({"bbb"}),
    }
    # Idempotent: a second run finds nothing left to move.
    assert migrate_baselines(target) == []


# --------------------------------------------------------------------- CLI


def test_cli_taint_exit_codes():
    assert main(["taint", str(FIXTURES)]) == EXIT_FINDINGS
    assert main(["taint", str(FIXTURES / "good_confirmed.py")]) == EXIT_CLEAN
    assert main(["taint", "no/such/path.py"]) == EXIT_USAGE


def test_cli_taint_json_document(capsys):
    assert main(["taint", str(FIXTURES), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "spectaint"
    assert set(ALL_CODES) <= set(doc["rules"])
    assert doc["summary"]["total"] >= len(ALL_CODES)


def test_cli_taint_sarif_document(capsys):
    assert main(["taint", str(FIXTURES), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "spectaint"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(ALL_CODES)
    for result in run["results"]:
        assert "speclint/v1" in result["partialFingerprints"]


def test_cli_taint_baseline_flow(tmp_path):
    baseline = tmp_path / "baselines.json"
    assert main(
        ["taint", str(FIXTURES), "--write-baseline", str(baseline)]
    ) == EXIT_CLEAN
    # The written file is the consolidated v2 document, keyed by tool.
    assert "spectaint" in load_baselines(baseline)
    assert main(
        ["taint", str(FIXTURES), "--baseline", str(baseline)]
    ) == EXIT_CLEAN
    assert main(
        ["taint", str(FIXTURES), "--baseline", str(tmp_path / "none.json")]
    ) == EXIT_USAGE


def test_cli_taint_accepts_legacy_v1_baseline(tmp_path):
    diags = analyze_paths([FIXTURES])
    legacy = tmp_path / "spectaint-baseline.json"
    legacy.write_text(
        json.dumps({"fingerprints": sorted(fingerprint(d) for d in diags)})
    )
    assert main(
        ["taint", str(FIXTURES), "--baseline", str(legacy)]
    ) == EXIT_CLEAN


def test_cli_taint_trace_verdicts(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _escape_log().save(trace)
    assert main(
        ["taint", str(FIXTURES / "bad_spt301_io.py"), "--trace", str(trace)]
    ) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "escape witness(es)" in out
    assert "CONFIRMED" in out

    clean = tmp_path / "clean.jsonl"
    _clean_log().save(clean)
    assert main(
        ["taint", str(FIXTURES / "bad_spt301_io.py"), "--trace", str(clean)]
    ) == EXIT_FINDINGS  # static findings still gate even when refuted
    assert "REFUTED" in capsys.readouterr().out

    # A clean tree + trace: nothing to cross-reference, exit 0.
    assert main(
        ["taint", str(FIXTURES / "good_confirmed.py"), "--trace", str(trace)]
    ) == EXIT_CLEAN
    assert "no static SPT findings" in capsys.readouterr().out

    assert main(
        ["taint", str(FIXTURES), "--trace", str(tmp_path / "nope.jsonl")]
    ) == EXIT_USAGE


def test_cli_check_exit_codes_match_individual_tools(capsys):
    dirty = str(FIXTURES)
    clean = str(FIXTURES / "good_commit_point.py")
    assert main(["check", dirty]) == main(["taint", dirty]) == EXIT_FINDINGS
    assert main(["check", clean]) == main(["taint", clean]) == EXIT_CLEAN
    assert main(["check", "no/such/path.py"]) == EXIT_USAGE
    capsys.readouterr()


def test_cli_check_text_summary(capsys):
    assert main(["check", str(FIXTURES / "good_commit_point.py")]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "repro check:" in out
    assert "1 file(s) parsed once" in out


def test_cli_check_merged_sarif_has_one_run_per_tool(tmp_path, capsys):
    sarif = tmp_path / "merged.sarif"
    assert main(["check", str(FIXTURES), "--sarif", str(sarif)]) == 1
    capsys.readouterr()
    doc = json.loads(sarif.read_text())
    names = [r["tool"]["driver"]["name"] for r in doc["runs"]]
    assert names == [
        "specbound", "specflow", "speclint", "specperf", "spectaint"
    ]
    spt_run = doc["runs"][names.index("spectaint")]
    assert {r["ruleId"] for r in spt_run["results"]} == set(ALL_CODES)


def test_cli_check_migrate_baselines(tmp_path, capsys):
    target = tmp_path / "baselines.json"
    legacy_baseline_path("specflow", tmp_path).write_text(
        json.dumps({"fingerprints": ["abc"]})
    )
    assert main(
        ["check", "--migrate-baselines", "--baselines", str(target)]
    ) == EXIT_CLEAN
    assert "migrated" in capsys.readouterr().out
    assert load_baselines(target)["specflow"] == frozenset({"abc"})


def test_cli_check_applies_consolidated_baselines(tmp_path, capsys):
    # Accept every spectaint AND specflow finding in the fixtures
    # (specflow rightly flags the speculate-then-send mutants too);
    # the fully-gated run then exits 0.
    from repro.analysis import specflow

    target = tmp_path / "baselines.json"
    set_baseline(
        "spectaint",
        frozenset(fingerprint(d) for d in analyze_paths([FIXTURES])),
        target,
    )
    set_baseline(
        "specflow",
        frozenset(fingerprint(d) for d in specflow.analyze_paths([FIXTURES])),
        target,
    )
    assert main(
        ["check", str(FIXTURES), "--baselines", str(target)]
    ) == EXIT_CLEAN
    capsys.readouterr()


# ------------------------------------------------------------- parse once


def test_check_parses_each_file_exactly_once(monkeypatch, capsys):
    parsed = []
    original = ModuleGraphs.from_source.__func__

    def counting(cls, source, path="<string>"):
        parsed.append(path)
        return original(cls, source, path=path)

    monkeypatch.setattr(cfg.ModuleGraphs, "from_source", classmethod(counting))
    assert main(["check", str(FIXTURES)]) == EXIT_FINDINGS
    capsys.readouterr()
    files = sorted(str(p) for p in FIXTURES.glob("*.py"))
    assert sorted(parsed) == files  # each file parsed exactly once
    assert len(parsed) == len(set(parsed))


def test_program_index_shares_one_callgraph():
    index = ProgramIndex([FIXTURES])
    assert index.callgraph is index.callgraph
    assert {Path(m.path).name for m in index.modules} == {
        p.name for p in FIXTURES.glob("*.py")
    }


def test_analyze_modules_reuses_a_provided_callgraph():
    index = ProgramIndex([FIXTURES / "bad_interproc_chain.py"])
    diags = analyze_modules(index.modules, callgraph=index.callgraph)
    assert [d.code for d in diags] == ["SPT301"]
