"""Cross-validation: the extended performance model vs the simulator.

The Monte-Carlo pipeline model of :mod:`repro.perfmodel.extended` and
the discrete-event simulator implement the same protocol at very
different abstraction levels; their qualitative predictions must
agree.
"""

import pytest

from repro.core import ZeroOrderHold, run_program
from repro.netsim import ConstantLatency, DelayNetwork, StochasticLatency
from repro.perfmodel import (
    ExtendedPerformanceModel,
    LinearCommTime,
    ModelParams,
    VariabilityParams,
)
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement

#: Shared scenario: 2 equal processors, compute 1 s, comm 1.6 s mean.
COMP_OPS = 1000.0
CAPACITY = 1000.0
COMM = 1.6
P = 2
N_VARS = 8  # 2 blocks of 4 scalars


def des_time_per_iteration(fw: int, sigma: float, iterations: int = 30) -> float:
    latency = ConstantLatency(COMM)
    model = StochasticLatency(latency, sigma=sigma, seed=11) if sigma else latency
    cluster = Cluster(
        uniform_specs(P, capacity=CAPACITY),
        network_factory=lambda env: DelayNetwork(env, model),
    )
    prog = CoupledIncrement(
        nprocs=P, iterations=iterations, coupling=0.0, rates=[0.0, 0.0],
        threshold=0.0, ops_per_compute=COMP_OPS, speculator=ZeroOrderHold(),
    )
    result = run_program(prog, cluster, fw=fw, cascade="none")
    return result.makespan / iterations


def model_time_per_iteration(fw: int, comm_cv: float) -> float:
    # Express the same scenario in model terms: per-variable op counts
    # such that a full compute phase costs COMP_OPS on each rank.
    params = ModelParams(
        n=N_VARS,
        capacities=(CAPACITY, CAPACITY),
        f_comp=COMP_OPS / (N_VARS / P),
        f_spec=12.0,
        f_check=24.0,
        t_comm=LinearCommTime(slope=COMM),
        k=0.0,
    )
    model = ExtendedPerformanceModel(
        params, VariabilityParams(comm_cv=comm_cv, k1=0.0), seed=3,
    )
    return model.expected_iteration_time(P, fw)


def test_agreement_deterministic_blocking():
    """FW=0, no variance: both say compute + comm exactly."""
    assert des_time_per_iteration(0, 0.0, iterations=50) == pytest.approx(
        model_time_per_iteration(0, 0.0), rel=0.1
    )


def test_agreement_deterministic_fw1():
    """FW=1, comm > comp: both predict ~comm-bound iterations."""
    des = des_time_per_iteration(1, 0.0, iterations=50)
    mod = model_time_per_iteration(1, 0.0)
    assert des == pytest.approx(mod, rel=0.15)


def test_agreement_on_orderings_under_variance():
    """Both levels agree on the qualitative structure with jittery comm:
    FW1 < FW0, and FW2 <= FW1 (deeper window absorbs jitter)."""
    sigma = 0.6  # log-normal sigma -> cv = sqrt(e^{s^2}-1) ~ 0.66
    cv = 0.66
    des = {fw: des_time_per_iteration(fw, sigma, iterations=40) for fw in (0, 1, 2)}
    mod = {fw: model_time_per_iteration(fw, cv) for fw in (0, 1, 2)}
    for series in (des, mod):
        assert series[1] < series[0]
        assert series[2] <= series[1] + 1e-9


def test_agreement_on_variance_penalty():
    """Both levels: jitter makes FW=1 slower than the calm case."""
    des_calm = des_time_per_iteration(1, 0.0, iterations=40)
    des_noisy = des_time_per_iteration(1, 0.6, iterations=40)
    mod_calm = model_time_per_iteration(1, 0.0)
    mod_noisy = model_time_per_iteration(1, 0.66)
    assert des_noisy > des_calm
    assert mod_noisy > mod_calm
