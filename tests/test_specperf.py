"""Tests for specperf: attribution, the SPP rule pack, suppressions,
cost contracts and the ``repro perf-lint`` CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis.cfg import CallGraph, ModuleGraphs
from repro.analysis.diagnostics import SPP_RULES, Severity, all_spp_codes
from repro.analysis.perf import (
    analyze_paths,
    analyze_source,
    build_attribution,
    check_contracts,
    measure_phase_shares,
    model_phase_shares,
    rule_catalogue,
)
from repro.analysis.perf.attribution import summarize_costs
from repro.analysis.perf.contracts import (
    CONFIRMED,
    PHASE_OF_RULE,
    REFUTED,
    UNOBSERVED,
    observed_phases,
)
from repro.analysis.reporting import render_diag_json
from repro.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.trace.events import EventLog
from repro.trace.phases import PHASES

FIXTURES = Path(__file__).parent / "specperf_fixtures"
SRC = Path(__file__).parent.parent / "src"

ALL_CODES = [f"SPP20{i}" for i in range(1, 9)]


def _attribution(source, path="<fixture>"):
    module = ModuleGraphs.from_source(source, path=path)
    return module, build_attribution(CallGraph([module]))


# --------------------------------------------------------------- registry


def test_all_spp_rules_registered():
    assert all_spp_codes() == ALL_CODES
    assert set(rule_catalogue()) == set(ALL_CODES)
    for code in ALL_CODES:
        assert SPP_RULES[code].severity in (Severity.ERROR, Severity.WARNING)
        assert PHASE_OF_RULE[code] in PHASES


# ------------------------------------------------------------ attribution


def test_attribution_seeds_by_terminal_name():
    module, attr = _attribution(
        "def send(proc, dst, value):\n"
        "    pass\n"
        "def compute(state):\n"
        "    pass\n"
    )
    assert attr.phases_of(("<fixture>", "send")) == {"send"}
    assert attr.phases_of(("<fixture>", "compute")) == {"compute"}


def test_attribution_propagates_caller_to_callee():
    module, attr = _attribution(
        "def helper(x):\n"
        "    return x + 1\n"
        "def compute(state):\n"
        "    return helper(state)\n"
        "def unrelated(x):\n"
        "    return x\n"
    )
    assert "compute" in attr.phases_of(("<fixture>", "helper"))
    assert attr.phases_of(("<fixture>", "unrelated")) == frozenset()


def test_attribution_is_transitive_and_merges_phases():
    module, attr = _attribution(
        "def deep(x):\n"
        "    return x\n"
        "def helper(x):\n"
        "    return deep(x)\n"
        "def compute(state):\n"
        "    return helper(state)\n"
        "def verify(a, b):\n"
        "    return helper(a) == b\n"
    )
    assert attr.phases_of(("<fixture>", "deep")) == {"compute", "check"}


def test_attribution_ignores_generic_container_names():
    # `extend` is a defined function AND a list method name: the call
    # edge through `.extend` must not leak the compute phase into it.
    module, attr = _attribution(
        "def extend(log, events):\n"
        "    log.events += events\n"
        "def compute(state, out):\n"
        "    out.extend(state)\n"
    )
    assert attr.phases_of(("<fixture>", "extend")) == frozenset()


def test_hot_reachability_from_run_seat():
    module, attr = _attribution(
        "def kernel(x):\n"
        "    return x * 2\n"
        "def run(state):\n"
        "    return kernel(state)\n"
        "def cold(x):\n"
        "    return x\n"
    )
    assert attr.is_hot(("<fixture>", "kernel"))
    assert not attr.is_hot(("<fixture>", "cold"))


def test_cost_summaries_count_sites_and_loop_depth():
    import ast

    tree = ast.parse(
        "def f(xs, proc):\n"
        "    import numpy as np\n"
        "    buf = np.zeros(3)\n"
        "    for x in xs:\n"
        "        for y in x:\n"
        "            proc.send(0, y)\n"
        "    return deepcopy(buf)\n"
    )
    costs = summarize_costs(tree.body[0])
    assert costs.allocations == 1
    assert costs.copies == 1
    assert costs.sends == 1
    assert costs.max_loop_depth == 2


# -------------------------------------------------------------- rule pack


@pytest.mark.parametrize("code", ALL_CODES)
def test_each_rule_fires_exactly_once_on_its_fixture(code):
    fixture = next(FIXTURES.glob(f"bad_{code.lower()}_*.py"))
    diagnostics = analyze_paths([fixture])
    assert [d.code for d in diagnostics] == [code]
    assert diagnostics[0].path == str(fixture)


def test_good_fixture_is_clean():
    assert analyze_paths([FIXTURES / "good_hot_path.py"]) == []


def test_whole_fixture_dir_yields_one_finding_per_rule():
    diagnostics = analyze_paths([FIXTURES])
    assert sorted(d.code for d in diagnostics) == ALL_CODES


def test_spp201_respects_immutability_guard():
    clean = (
        "import copy\n"
        "def _is_immutable(v):\n"
        "    return isinstance(v, tuple)\n"
        "def isolate_payload(v):\n"
        "    if _is_immutable(v):\n"
        "        return v\n"
        "    return copy.deepcopy(v)\n"
    )
    assert analyze_source(clean) == []


def test_spp201_fires_on_pre_fastpath_isolate_payload():
    # The exact shape vm/collectives.py had before the fast path.
    legacy = (
        "import copy\n"
        "def isolate_payload(value):\n"
        "    return copy.deepcopy(value)\n"
    )
    diags = analyze_source(legacy)
    assert [d.code for d in diags] == ["SPP201"]
    assert diags[0].severity is Severity.ERROR


def test_select_restricts_rules():
    diags = analyze_paths([FIXTURES], select=["SPP203"])
    assert [d.code for d in diags] == ["SPP203"]


def test_suppression_directive_silences_a_finding():
    source = (
        "import copy\n"
        "def isolate_payload(value):\n"
        "    return copy.deepcopy(value)  # specperf: disable=SPP201\n"
    )
    assert analyze_source(source) == []
    file_wide = "# specperf: disable-file=SPP201\n" + (
        "import copy\n"
        "def isolate_payload(value):\n"
        "    return copy.deepcopy(value)\n"
    )
    assert analyze_source(file_wide) == []


def test_syntax_error_yields_spp000():
    diags = analyze_source("def broken(:\n")
    assert [d.code for d in diags] == ["SPP000"]


def test_src_tree_is_clean():
    assert analyze_paths([SRC]) == []


def test_analysis_is_deterministic_over_src():
    first = render_diag_json(analyze_paths([SRC]), "specperf", rule_catalogue())
    second = render_diag_json(analyze_paths([SRC]), "specperf", rule_catalogue())
    assert first == second


# ---------------------------------------------------------- cost contracts


def _synthetic_log():
    """Two ranks; rank 0: compute-heavy, rank 1: waits on a recv."""
    log = EventLog()
    # rank 0: send at t=0, compute 0->10, verify at 10, next compute.
    log.record("send", 0, 0.0, peer=1, family="vars", iteration=0)
    log.record("compute", 0, 0.0, iteration=0)
    log.record("verify", 0, 10.0, peer=1, family="vars", iteration=0)
    log.record("compute", 0, 10.5, iteration=1)
    # rank 1: blocked on the message from t=0 to t=4.
    log.record("send", 1, 0.0, peer=0, family="vars", iteration=0)
    log.record("recv", 1, 4.0, peer=0, family="vars", iteration=0)
    log.record("compute", 1, 4.0, iteration=0)
    log.record("compute", 1, 9.0, iteration=1)
    return log


def test_measure_phase_shares_attributes_gaps():
    shares = measure_phase_shares(_synthetic_log())
    assert shares["compute"] == pytest.approx(15.0 / 19.5)
    assert shares["comm"] == pytest.approx(4.0 / 19.5)
    assert shares["check"] == pytest.approx(0.5 / 19.5)
    assert sum(shares.values()) == pytest.approx(1.0)


def test_measure_phase_shares_empty_log_is_all_zero():
    shares = measure_phase_shares(EventLog())
    assert set(shares) == set(PHASES)
    assert all(v == 0.0 for v in shares.values())


def test_observed_phases_follow_event_kinds():
    assert observed_phases(_synthetic_log()) == {"compute", "comm", "check"}


def test_model_phase_shares_normalise_and_degenerate_to_serial():
    shares = model_phase_shares(8)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["compute"] > 0
    serial = model_phase_shares(1)
    assert serial["compute"] == 1.0
    assert serial["comm"] == 0.0


def test_check_contracts_verdict_statuses():
    diags = analyze_paths([FIXTURES])
    measured, modeled, verdicts = check_contracts(diags, _synthetic_log(), p=2)
    by_code = {v.code: v for v in verdicts}
    assert set(by_code) == set(ALL_CODES)
    # comm measured ~20.5% vs model 0% exposed comm at p=2: confirmed.
    assert by_code["SPP201"].status == CONFIRMED
    # spec/correct never appear in the synthetic log: unobserved.
    assert by_code["SPP202"].status == UNOBSERVED
    # compute measured below the model's budget: refuted.
    assert by_code["SPP203"].status == REFUTED
    line = by_code["SPP201"].format_text()
    assert "SPP201" in line and "CONFIRMED" in line


def test_check_contracts_is_deterministic():
    diags = analyze_paths([FIXTURES])
    log = _synthetic_log()
    a = check_contracts(diags, log, p=2)
    b = check_contracts(diags, log, p=2)
    assert a == b


# -------------------------------------------------------------------- CLI


def test_cli_perf_lint_exit_codes():
    assert main(["perf-lint", str(FIXTURES)]) == EXIT_FINDINGS
    assert main(["perf-lint", str(FIXTURES / "good_hot_path.py")]) == EXIT_CLEAN
    assert main(["perf-lint", "no/such/path.py"]) == EXIT_USAGE


def test_cli_perf_lint_json_document(capsys):
    assert main(["perf-lint", str(FIXTURES), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "specperf"
    assert doc["summary"]["total"] == 8
    assert set(ALL_CODES) <= set(doc["rules"])


def test_cli_perf_lint_sarif_document(capsys):
    assert main(["perf-lint", str(FIXTURES), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "specperf"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert set(ALL_CODES) <= rule_ids
    assert len(run["results"]) == 8
    for result in run["results"]:
        assert "speclint/v1" in result["partialFingerprints"]


def test_cli_perf_lint_baseline_flow(tmp_path):
    baseline = tmp_path / "specperf-baseline.json"
    assert main(
        ["perf-lint", str(FIXTURES), "--write-baseline", str(baseline)]
    ) == EXIT_CLEAN
    assert main(
        ["perf-lint", str(FIXTURES), "--baseline", str(baseline)]
    ) == EXIT_CLEAN
    assert main(
        ["perf-lint", str(FIXTURES), "--baseline", str(tmp_path / "none.json")]
    ) == EXIT_USAGE


def test_cli_perf_lint_trace_contracts(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _synthetic_log().save(trace)
    assert main(["perf-lint", str(FIXTURES), "--trace", str(trace)]) == 1
    out = capsys.readouterr().out
    assert "cost-contract" in out
    assert "CONFIRMED" in out
    assert "phase      measured    model" in out
    # A clean tree + trace: nothing to cross-reference, exit 0.
    assert main(
        ["perf-lint", str(FIXTURES / "good_hot_path.py"), "--trace", str(trace)]
    ) == 0
    assert "no specperf findings" in capsys.readouterr().out
    assert main(
        ["perf-lint", str(FIXTURES), "--trace", str(tmp_path / "nope.jsonl")]
    ) == EXIT_USAGE


def test_cli_perf_lint_tol_flag_relaxes_confirmation(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _synthetic_log().save(trace)
    assert main(
        ["perf-lint", str(FIXTURES / "bad_spp203_alloc.py"),
         "--trace", str(trace), "--tol", "1.0"]
    ) == 1  # the static finding still fails the run
    out = capsys.readouterr().out
    assert "REFUTED" in out and "CONFIRMED" not in out
