"""Fault-determinism guarantees (satellite of the specfault layer).

Two contracts:

1. Same seed + same FaultPlan => byte-identical EventLog on the
   loopback backend (its clock is the deterministic scheduler round
   counter, so even event times replay exactly).
2. Whenever every dropped message is eventually retransmitted, the
   chaos run's physics are *identical* to the fault-free run — checked
   property-style over a grid of plan seeds and loss rates under the
   deterministic contract fw=1 + cascade="recompute" (every send fully
   verified before it leaves, so timing shifts cannot leak into
   payloads).
"""

import numpy as np
import pytest

from repro import RunConfig, run
from repro.faults import EdgeFault, FaultPlan, RankFault

from tests.toy_programs import CoupledIncrement


def _program(p=4, iterations=12):
    return CoupledIncrement(p, iterations, coupling=0.05)


def _mixed_plan(seed, rate=0.15):
    return FaultPlan(
        seed=seed,
        edges=(
            EdgeFault(kind="drop", rate=rate),
            EdgeFault(kind="duplicate", rate=rate / 2),
            EdgeFault(kind="reorder", rate=rate),
        ),
        ranks=(RankFault(rank=1, slowdown=2.0),),
    )


def _loopback_chaos(plan, prog=None, record_trace=False):
    prog = prog if prog is not None else _program()
    return run(RunConfig(prog, backend="loopback", fw=1,
                         cascade="recompute", fault_plan=plan,
                         record_trace=record_trace))


def _log_bytes(report, tmp_path, name):
    path = tmp_path / name
    report.event_log.save(path)
    return path.read_bytes()


def test_same_seed_same_plan_byte_identical_log(tmp_path):
    plan = _mixed_plan(seed=7)
    first = _loopback_chaos(plan, record_trace=True)
    second = _loopback_chaos(plan, record_trace=True)
    assert first.fault_summary["total_injected"] >= 1
    assert (_log_bytes(first, tmp_path, "a.jsonl")
            == _log_bytes(second, tmp_path, "b.jsonl"))


def test_different_plan_seed_perturbs_the_run(tmp_path):
    # Decisions are hashes of (plan.seed, ...): reseeding the plan must
    # move the faults.  Compare the full trace, not just the counts —
    # two seeds can coincide on totals but not on the event stream.
    logs = {
        seed: _log_bytes(
            _loopback_chaos(_mixed_plan(seed=seed), record_trace=True),
            tmp_path, f"seed{seed}.jsonl",
        )
        for seed in (0, 1, 2)
    }
    assert len(set(logs.values())) > 1


@pytest.mark.parametrize("plan_seed", [0, 1, 2])
@pytest.mark.parametrize("rate", [0.05, 0.2])
def test_recovered_chaos_physics_identical_to_fault_free(plan_seed, rate):
    prog = _program()
    clean = run(RunConfig(prog, backend="loopback", fw=1,
                          cascade="recompute"))
    report = _loopback_chaos(_mixed_plan(seed=plan_seed, rate=rate), prog)
    # Precondition of the property: every loss was eventually healed.
    assert report.fault_summary["outstanding_losses"] == 0
    for rank in range(prog.nprocs):
        np.testing.assert_array_equal(
            report.results[rank], clean.results[rank],
            err_msg=f"plan_seed={plan_seed} rate={rate} rank={rank}",
        )


def test_injected_counts_identical_across_backends():
    # The plan's decisions depend only on (seed, fault, src, dst, seq),
    # never on the backend's clock — DES and loopback must inject the
    # exact same multiset of faults.
    plan = _mixed_plan(seed=3)
    prog = _program()
    by_backend = {}
    for backend in ("des", "loopback"):
        report = run(RunConfig(prog, backend=backend, fw=1,
                               cascade="recompute", fault_plan=plan))
        by_backend[backend] = report.fault_summary["injected"]
    assert by_backend["des"] == by_backend["loopback"]
    assert sum(by_backend["des"].values()) >= 1
