"""Unit tests for phase traces, breakdowns and the ASCII Gantt."""

import pytest

from repro.trace import (
    Interval,
    PhaseBreakdown,
    PhaseTrace,
    merge_breakdowns,
    render_gantt,
)


def make_trace():
    t = PhaseTrace(rank=0)
    t.record("compute", 0.0, 2.0, iteration=0)
    t.record("comm", 2.0, 3.0, iteration=0)
    t.record("compute", 3.0, 5.0, iteration=1)
    t.record("check", 5.0, 5.5, iteration=1)
    return t


def test_interval_duration():
    iv = Interval("compute", 1.0, 3.5)
    assert iv.duration == 2.5


def test_interval_rejects_negative():
    with pytest.raises(ValueError):
        Interval("compute", 2.0, 1.0)


def test_trace_totals():
    t = make_trace()
    assert t.total("compute") == pytest.approx(4.0)
    assert t.total("comm") == pytest.approx(1.0)
    assert t.total("spec") == 0.0


def test_trace_span():
    assert make_trace().span() == pytest.approx(5.5)
    assert PhaseTrace().span() == 0.0


def test_trace_drops_zero_length():
    t = PhaseTrace()
    t.record("compute", 1.0, 1.0)
    assert len(t) == 0


def test_trace_rejects_negative_interval():
    t = PhaseTrace()
    with pytest.raises(ValueError):
        t.record("compute", 2.0, 1.0)


def test_trace_iterations_listing():
    assert make_trace().iterations() == [0, 1]


def test_trace_for_iteration():
    sub = make_trace().for_iteration(1)
    assert sub.total("compute") == pytest.approx(2.0)
    assert sub.total("comm") == 0.0


def test_breakdown_from_trace():
    b = make_trace().breakdown()
    assert b["compute"] == pytest.approx(4.0)
    assert b["comm"] == pytest.approx(1.0)
    assert b["missing-phase"] == 0.0
    assert b.span == pytest.approx(5.5)


def test_breakdown_busy_excludes_comm_idle():
    b = PhaseBreakdown(totals={"compute": 3.0, "comm": 2.0, "idle": 1.0, "spec": 0.5})
    assert b.busy == pytest.approx(3.5)
    assert b.total == pytest.approx(6.5)


def test_breakdown_scaled():
    b = PhaseBreakdown(totals={"compute": 4.0}, span=8.0)
    half = b.scaled(0.5)
    assert half["compute"] == 2.0
    assert half.span == 4.0


def test_breakdown_as_row_order():
    b = PhaseBreakdown(totals={"compute": 1.0, "comm": 2.0, "spec": 3.0, "check": 4.0})
    row = b.as_row()
    assert row == [1.0, 2.0, 3.0, 4.0, 10.0]


def test_merge_breakdowns_max():
    a = PhaseBreakdown(totals={"compute": 1.0, "comm": 5.0}, span=6.0)
    b = PhaseBreakdown(totals={"compute": 3.0, "comm": 2.0}, span=5.0)
    m = merge_breakdowns([a, b], how="max")
    assert m["compute"] == 3.0
    assert m["comm"] == 5.0
    assert m.span == 6.0


def test_merge_breakdowns_sum_and_mean():
    a = PhaseBreakdown(totals={"compute": 1.0}, span=1.0)
    b = PhaseBreakdown(totals={"compute": 3.0}, span=3.0)
    assert merge_breakdowns([a, b], how="sum")["compute"] == 4.0
    assert merge_breakdowns([a, b], how="mean")["compute"] == 2.0


def test_merge_breakdowns_empty():
    m = merge_breakdowns([])
    assert m.total == 0.0


def test_merge_breakdowns_bad_mode():
    with pytest.raises(ValueError):
        merge_breakdowns([PhaseBreakdown()], how="median")


def test_gantt_renders_rows_and_legend():
    t0 = make_trace()
    t1 = PhaseTrace(rank=1)
    t1.record("comm", 0.0, 5.5)
    out = render_gantt([t0, t1], width=22)
    lines = out.splitlines()
    assert lines[0].startswith("P0  |")
    assert lines[1].startswith("P1  |")
    assert "C" in lines[0]  # compute glyph
    assert "-" in lines[1]  # comm glyph
    assert "legend" in out


def test_gantt_dominant_phase_per_bucket():
    t = PhaseTrace(rank=0)
    t.record("compute", 0.0, 0.9)
    t.record("comm", 0.9, 1.0)
    out = render_gantt([t], width=1, legend=False)
    # compute dominates the single bucket
    assert "|C|" in out


def test_gantt_empty_traces():
    assert "no traces" in render_gantt([])


def test_gantt_width_validation():
    with pytest.raises(ValueError):
        render_gantt([PhaseTrace()], width=0)


def test_gantt_custom_glyphs():
    t = PhaseTrace(rank=0)
    t.record("compute", 0, 1)
    out = render_gantt([t], width=4, glyphs={"compute": "#"}, legend=False)
    assert "#" in out
