"""Unit tests for the N-body physics substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nbody import (
    ParticleSystem,
    accelerations,
    accelerations_from_sources,
    cold_disk,
    leapfrog_step,
    pairwise_error_ratios,
    plummer_sphere,
    potential_energy,
    simulate,
    speculate_positions,
    symplectic_euler_step,
    two_clusters,
    uniform_cube,
    worst_pairwise_error,
)


# ------------------------------------------------------------------- forces
def test_two_body_acceleration_magnitude():
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    mass = np.array([1.0, 2.0])
    a = accelerations(pos, mass, G=1.0, softening=0.0)
    # particle 0 pulled toward particle 1 with Gm2/r^2 = 2
    np.testing.assert_allclose(a[0], [2.0, 0.0, 0.0], atol=1e-12)
    np.testing.assert_allclose(a[1], [-1.0, 0.0, 0.0], atol=1e-12)


def test_accelerations_newton_third_law():
    rng = np.random.default_rng(1)
    pos = rng.normal(size=(20, 3))
    mass = rng.uniform(0.5, 2.0, size=20)
    a = accelerations(pos, mass, softening=0.01)
    # Total force sums to zero.
    np.testing.assert_allclose(np.einsum("i,ij->j", mass, a), 0.0, atol=1e-10)


def test_softening_keeps_close_encounters_finite():
    pos = np.array([[0.0, 0.0, 0.0], [1e-12, 0.0, 0.0]])
    mass = np.array([1.0, 1.0])
    a = accelerations(pos, mass, softening=0.1)
    assert np.all(np.isfinite(a))


def test_sources_split_equals_full_sum():
    """Partial sums over source blocks add up to the full acceleration."""
    rng = np.random.default_rng(2)
    pos = rng.normal(size=(30, 3))
    mass = rng.uniform(0.5, 1.5, size=30)
    full = accelerations(pos, mass, softening=0.05)
    targets = pos[:10]
    own = accelerations_from_sources(
        targets, pos[:10], mass[:10], softening=0.05, exclude_self_pairs=True
    )
    rest = accelerations_from_sources(targets, pos[10:], mass[10:], softening=0.05)
    np.testing.assert_allclose(own + rest, full[:10], rtol=1e-10)


def test_force_input_validation():
    with pytest.raises(ValueError):
        accelerations_from_sources(np.zeros((2, 2)), np.zeros((2, 3)), np.ones(2))
    with pytest.raises(ValueError):
        accelerations_from_sources(np.zeros((2, 3)), np.zeros((2, 2)), np.ones(2))
    with pytest.raises(ValueError):
        accelerations_from_sources(np.zeros((2, 3)), np.zeros((2, 3)), np.ones(3))
    with pytest.raises(ValueError):
        accelerations_from_sources(np.zeros((2, 3)), np.zeros((2, 3)), np.ones(2), softening=-1)
    with pytest.raises(ValueError):
        accelerations_from_sources(
            np.zeros((2, 3)), np.zeros((3, 3)), np.ones(3), exclude_self_pairs=True
        )


def test_empty_blocks_zero_acceleration():
    out = accelerations_from_sources(np.zeros((0, 3)), np.zeros((5, 3)), np.ones(5))
    assert out.shape == (0, 3)
    out = accelerations_from_sources(np.zeros((4, 3)), np.zeros((0, 3)), np.ones(0))
    np.testing.assert_array_equal(out, np.zeros((4, 3)))


def test_potential_energy_two_body():
    pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
    mass = np.array([3.0, 4.0])
    # -G m1 m2 / r = -6
    assert potential_energy(pos, mass, softening=0.0) == pytest.approx(-6.0)


def test_potential_energy_single_particle_zero():
    assert potential_energy(np.zeros((1, 3)), np.ones(1)) == 0.0


# ---------------------------------------------------------------- particles
def test_particle_system_validation():
    with pytest.raises(ValueError):
        ParticleSystem(mass=np.ones((2, 2)), pos=np.zeros((2, 3)), vel=np.zeros((2, 3)))
    with pytest.raises(ValueError):
        ParticleSystem(mass=np.ones(2), pos=np.zeros((3, 3)), vel=np.zeros((2, 3)))
    with pytest.raises(ValueError):
        ParticleSystem(mass=np.array([1.0, -1.0]), pos=np.zeros((2, 3)), vel=np.zeros((2, 3)))


def test_particle_system_copy_independent():
    ps = uniform_cube(5, seed=0)
    cp = ps.copy()
    cp.pos[0, 0] = 99.0
    assert ps.pos[0, 0] != 99.0


def test_generators_basic_shapes():
    for gen in (uniform_cube, plummer_sphere):
        ps = gen(50, seed=3)
        assert ps.n == 50
        assert ps.pos.shape == (50, 3)
        assert np.all(np.isfinite(ps.pos))
        assert np.all(np.isfinite(ps.vel))
    ps = two_clusters(51, seed=3)
    assert ps.n == 51
    ps = cold_disk(40, seed=3)
    assert ps.n == 40


def test_generators_deterministic():
    a = plummer_sphere(30, seed=7)
    b = plummer_sphere(30, seed=7)
    np.testing.assert_array_equal(a.pos, b.pos)
    np.testing.assert_array_equal(a.vel, b.vel)


def test_generator_validation():
    with pytest.raises(ValueError):
        uniform_cube(0)
    with pytest.raises(ValueError):
        plummer_sphere(0)
    with pytest.raises(ValueError):
        two_clusters(1)
    with pytest.raises(ValueError):
        cold_disk(1)


def test_plummer_roughly_virialised():
    ps = plummer_sphere(400, seed=11, softening=0.01)
    ke = ps.kinetic_energy()
    pe = ps.potential()
    # Virial theorem: 2 KE + PE ~ 0 (loose bound for a finite sample).
    assert abs(2 * ke + pe) < 0.5 * abs(pe)


def test_two_clusters_separated():
    ps = two_clusters(100, seed=5, separation=6.0)
    x = ps.pos[:, 0]
    assert x.min() < -1.0 and x.max() > 1.0


# --------------------------------------------------------------- integrators
def test_symplectic_euler_conserves_momentum():
    ps = uniform_cube(30, seed=4)
    before = ps.momentum()
    after = simulate(ps, dt=0.01, steps=10).momentum()
    np.testing.assert_allclose(before, after, atol=1e-10)


def test_leapfrog_energy_drift_small():
    ps = plummer_sphere(60, seed=9, softening=0.1)
    e0 = ps.total_energy()
    out = simulate(ps, dt=0.005, steps=50, method="leapfrog")
    e1 = out.total_energy()
    assert abs(e1 - e0) / abs(e0) < 0.02


def test_leapfrog_more_accurate_than_euler():
    ps = plummer_sphere(50, seed=10, softening=0.1)
    e0 = ps.total_energy()
    euler = simulate(ps, dt=0.01, steps=30, method="euler")
    frog = simulate(ps, dt=0.01, steps=30, method="leapfrog")
    assert abs(frog.total_energy() - e0) <= abs(euler.total_energy() - e0) + 1e-12


def test_integrator_validation():
    ps = uniform_cube(5)
    with pytest.raises(ValueError):
        symplectic_euler_step(ps, dt=0)
    with pytest.raises(ValueError):
        leapfrog_step(ps, dt=-1)
    with pytest.raises(ValueError):
        simulate(ps, dt=0.1, steps=-1)
    with pytest.raises(ValueError):
        simulate(ps, dt=0.1, steps=1, method="rk4")


def test_simulate_zero_steps_identity():
    ps = uniform_cube(5, seed=0)
    out = simulate(ps, dt=0.1, steps=0)
    np.testing.assert_array_equal(out.pos, ps.pos)


def test_cold_disk_orbits_stay_bounded():
    ps = cold_disk(30, seed=2)
    out = simulate(ps, dt=0.001, steps=100)
    radii = np.linalg.norm(out.pos[1:, :2], axis=1)
    assert np.all(radii < 5.0)
    assert np.all(radii > 0.1)


# ---------------------------------------------------------------- speculation
def test_speculate_positions_formula():
    pos = np.array([[1.0, 0.0, 0.0]])
    vel = np.array([[2.0, -1.0, 0.5]])
    out = speculate_positions(pos, vel, dt=0.1)
    np.testing.assert_allclose(out, [[1.2, -0.1, 0.05]])


def test_speculate_positions_validation():
    with pytest.raises(ValueError):
        speculate_positions(np.zeros((2, 3)), np.zeros((3, 3)), 0.1)
    with pytest.raises(ValueError):
        speculate_positions(np.zeros((2, 3)), np.zeros((2, 3)), 0.0)


def test_speculation_exact_for_constant_velocity():
    """A free particle moving at constant velocity is speculated exactly."""
    pos = np.array([[0.0, 0.0, 0.0]])
    vel = np.array([[1.0, 2.0, 3.0]])
    dt = 0.05
    spec = speculate_positions(pos, vel, dt)
    actual = pos + vel * dt
    np.testing.assert_allclose(spec, actual)


def test_pairwise_error_ratio_formula():
    spec = np.array([[1.1, 0.0, 0.0]])
    act = np.array([[1.0, 0.0, 0.0]])
    local = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
    # displacement 0.1; nearest local at distance 1.0
    ratios = pairwise_error_ratios(spec, act, local)
    np.testing.assert_allclose(ratios, [0.1])
    assert worst_pairwise_error(spec, act, local) == pytest.approx(0.1)


def test_pairwise_error_zero_for_exact_speculation():
    act = np.random.default_rng(0).normal(size=(5, 3))
    local = np.random.default_rng(1).normal(size=(4, 3))
    assert worst_pairwise_error(act, act, local) == 0.0


def test_pairwise_error_empty_inputs():
    assert pairwise_error_ratios(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros((3, 3))).size == 0
    out = pairwise_error_ratios(np.ones((2, 3)), np.ones((2, 3)), np.zeros((0, 3)))
    np.testing.assert_array_equal(out, [0.0, 0.0])
    assert worst_pairwise_error(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros((0, 3))) == 0.0


def test_pairwise_error_validation():
    with pytest.raises(ValueError):
        pairwise_error_ratios(np.zeros((2, 3)), np.zeros((3, 3)), np.zeros((1, 3)))
    with pytest.raises(ValueError):
        pairwise_error_ratios(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((1, 3)))


@settings(max_examples=50, deadline=None)
@given(dt=st.floats(0.001, 0.1), vmag=st.floats(0.0, 2.0))
def test_property_speculation_error_scales_with_dt_and_accel(dt, vmag):
    """Speculation error over one step is bounded by |a| dt^2 (Euler)."""
    pos = np.array([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
    vel = np.array([[0.0, vmag, 0.0], [0.0, -vmag, 0.0]])
    mass = np.array([1.0, 1.0])
    ps = ParticleSystem(mass=mass, pos=pos, vel=vel, softening=0.1)
    nxt = symplectic_euler_step(ps, dt)
    spec = speculate_positions(ps.pos, ps.vel, dt)
    err = np.linalg.norm(spec - nxt.pos, axis=1)
    a = accelerations(ps.pos, mass, softening=0.1)
    bound = np.linalg.norm(a, axis=1) * dt * dt + 1e-12
    assert np.all(err <= bound * (1 + 1e-9))
