"""Tests for NBodyProgram's Barnes-Hut force mode."""

import numpy as np
import pytest

from repro.apps import NBodyProgram
from repro.core import ReceiveDrivenDriver, run_program
from repro.nbody import plummer_sphere, uniform_cube
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs


def make_cluster(p, latency=0.0):
    return Cluster(
        uniform_specs(p, capacity=1e6),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def test_validation():
    system = uniform_cube(12, seed=0)
    with pytest.raises(ValueError):
        NBodyProgram(system, [1.0], 2, force_method="fmm")
    with pytest.raises(ValueError):
        NBodyProgram(system, [1.0], 2, force_method="barnes_hut", bh_theta=-1)


def test_bh_theta_zero_matches_direct_compute():
    system = uniform_cube(40, seed=1, softening=0.1)
    direct = NBodyProgram(system, [1.0, 1.0], 2, force_method="direct")
    bh = NBodyProgram(system, [1.0, 1.0], 2, force_method="barnes_hut", bh_theta=0.0)
    inputs = {r: direct.initial_block(r) for r in range(2)}
    np.testing.assert_allclose(
        bh.compute(0, inputs, 0), direct.compute(0, inputs, 0), rtol=1e-10, atol=1e-12
    )


def test_bh_run_close_to_direct_run():
    """A BH-mode parallel run tracks the direct-mode run to monopole
    accuracy over a few steps."""
    system = plummer_sphere(80, seed=2, softening=0.1)

    def run(method):
        prog = NBodyProgram(system, [1e6] * 2, 4, dt=0.005, threshold=0.0,
                            force_method=method, bh_theta=0.4)
        res = run_program(prog, make_cluster(2, latency=0.1), fw=1)
        return prog.gather(res.final_blocks)

    direct = run("direct")
    bh = run("barnes_hut")
    scale = np.abs(direct.pos).max()
    np.testing.assert_allclose(bh.pos, direct.pos, atol=0.01 * scale)


def test_bh_cost_model_uses_measured_interactions():
    system = uniform_cube(60, seed=3, softening=0.1)
    prog = NBodyProgram(system, [1.0, 1.0], 2, force_method="barnes_hut", bh_theta=0.8)
    pre = prog.compute_ops(0)  # estimate before any traversal
    inputs = {r: prog.initial_block(r) for r in range(2)}
    prog.compute(0, inputs, 0)
    post = prog.compute_ops(0)
    assert prog._bh_last_interactions[0] > 0
    assert post != pre or prog._bh_last_interactions[0] > 0
    # BH mode at a loose angle must be charged less than direct O(N^2).
    direct = NBodyProgram(system, [1.0, 1.0], 2, force_method="direct")
    assert post < direct.compute_ops(0) * 2  # sanity bound at this small N


def test_bh_mode_rejects_receive_driven():
    system = uniform_cube(20, seed=4, softening=0.1)
    prog = NBodyProgram(system, [1e6, 1e6], 2, force_method="barnes_hut")
    driver = ReceiveDrivenDriver(prog, make_cluster(2))
    with pytest.raises(NotImplementedError):
        driver.run()


def test_bh_speculation_and_correction_still_work():
    """Eq. 10/11 machinery is force-method independent."""
    system = uniform_cube(48, seed=5, softening=0.1)
    prog = NBodyProgram(system, [1e6] * 3, 5, dt=0.02, threshold=0.005,
                        force_method="barnes_hut", bh_theta=0.5)
    result = run_program(prog, make_cluster(3, latency=0.4), fw=1, cascade="none")
    assert prog.spec_stats.particles_checked > 0
    final = prog.gather(result.final_blocks)
    assert np.all(np.isfinite(final.pos))
