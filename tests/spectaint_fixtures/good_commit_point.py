"""Fixture (clean): a declared commit point is a sanctioned escape.

``adopt_arrival`` is decorated ``@commits``: spectaint trusts its body
(the store below would otherwise be SPT303) and treats every value
passed into it as confirmed from the call onward.
"""


def commits(func):
    return func


@commits
def adopt_arrival(store, value):
    store.state = value      # sanctioned: inside a declared commit point
    print("adopted", value)  # sanctioned: ditto


def on_arrival(store, history):
    guess = speculate(history)
    adopt_arrival(store, guess)   # clean: callee is a commit point
    print(guess)                  # clean: the call confirmed `guess`
