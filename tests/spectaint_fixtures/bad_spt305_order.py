"""Fixture: SPT305 — commit and confirm in the wrong order.

The code *does* verify the speculation — but only after the commit
has already run.  The operations exist, their order is the bug.
"""


def commit(block):
    return block


def adopt_then_check(history, actual):
    guess = speculate(history)
    commit(guess)          # SPT305: commit precedes its confirmation
    check(guess, actual)
