"""Fixture: SPT302 — an unconfirmed speculation is sent to a peer.

The predicted block travels to another rank with no rollback seat;
the receiver folds it into its own state as if it were confirmed.
"""


def exchange(transport, history):
    guess = predict(history)
    transport.send(1, guess)     # SPT302: payload is unconfirmed
    transport.broadcast(guess)   # SPT302: broadcast fan-out is worse
