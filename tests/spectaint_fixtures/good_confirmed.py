"""Fixture (clean): confirm-then-commit, the protocol done right.

Every speculative value passes a check/verify (or a justified
``# spectaint: commit`` line) before any irreversible effect.
"""


def step(transport, history, actual):
    guess = speculate(history)
    check(guess, actual)      # confirmation happens first ...
    transport.send(1, guess)  # ... so the send is clean
    print(guess)              # ... and so is the I/O


def barrier_step(transport, history):
    guess = speculate(history)
    # The surrounding barrier guarantees the actual arrived and matched
    # before this function is entered; the dataflow cannot see that.
    adopted = guess  # spectaint: commit — barrier-confirmed upstream
    transport.send(1, adopted)  # specflow: disable=SPF101
