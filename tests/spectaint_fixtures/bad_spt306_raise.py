"""Fixture: SPT306 — a speculation leaks through an exception.

The raise carries the predicted block out of the frame; whatever
handler catches it sits outside the rollback machinery and cannot
undo the speculation it now holds.
"""


def validate(history, limit):
    guess = speculate(history)
    if magnitude(guess) > limit:
        raise ValueError(guess)   # SPT306: exception carries the spec
    return guess
