"""Fixture: interprocedural escape through two calls.

Neither ``relay`` nor ``emit`` speculates, and ``produce`` never
touches I/O — only the whole chain is broken: the speculation made in
``produce`` flows through ``relay``'s parameter into ``emit``'s
parameter, which prints it.  Catching this requires the call-graph
summaries, not any single-function view.
"""


def emit(value):
    print(value)        # sink: tainted only via callers


def relay(value):
    emit(value)         # forwards its parameter to the sink


def produce(history):
    guess = speculate(history)
    relay(guess)        # SPT301: escape through a two-call chain
