"""Fixture: SPT301 — an unconfirmed speculation reaches I/O.

The predicted block is printed and written to a results file before
the actual value ever arrives; if the speculation is later rejected,
the emitted bytes cannot be recalled.
"""


def report_step(history, fh):
    guess = speculate(history)
    print(guess)     # SPT301: stdout is irreversible
    fh.write(guess)  # SPT301: file write is irreversible
    return guess
