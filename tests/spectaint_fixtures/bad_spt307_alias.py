"""Fixture: SPT307 — a speculation escapes through an alias.

``out`` (and its local alias ``sink``) belong to the caller; writing
the predicted block through them mutates state that outlives this
frame's rollback scope.
"""


def fill(out, history):
    guess = speculate(history)
    out.append(guess)    # SPT307: caller-owned list mutated
    sink = out
    sink[0] = guess      # SPT307: same object through a local alias
