"""Fixture: SPT303 — a speculation is stored past the backward window.

The predicted block lands in an object attribute that nothing in this
module ever pops, deletes or clears: when the backward window slides
past, there is no ledger entry left to roll the value back from.
"""


class Cache:
    def remember(self, history):
        guess = extrapolate(history)
        self.last_guess = guess        # SPT303: attribute never reclaimed
        self.all_guesses.append(guess)  # SPT303: list grows, never cleared
