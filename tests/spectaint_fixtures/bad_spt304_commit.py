"""Fixture: SPT304 — an unsanitized commit of speculative state.

``commit`` is not a declared commit point (no ``@commits``), and no
check/verify of the guess exists on any path, before or after — the
speculation is adopted wholesale.
"""


def commit(block):
    return block


def adopt(history):
    guess = speculate(history)
    commit(guess)   # SPT304: undeclared commit, never confirmed
