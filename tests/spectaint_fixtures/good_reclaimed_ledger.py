"""Fixture (clean): a reclaimed speculation ledger is not an escape.

Storing the guess into ``self.pending`` is exactly how a rollback
ledger works — and because this module also *pops* that attribute on
arrival, the store does not outlive the backward window (no SPT303).
"""


class Ledger:
    def speculate_input(self, key, history):
        guess = speculate(history)
        self.pending[key] = guess       # clean: reclaimed below
        return guess

    def on_arrival(self, key, actual):
        guess = self.pending.pop(key, None)
        if guess is not None:
            check(guess, actual)
