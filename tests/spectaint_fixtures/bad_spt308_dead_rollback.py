"""Fixture: SPT308 — the rollback handler is dead code.

A recovery routine exists, but nothing ever calls it: every rejected
speculation has no path back, so each one is effectively a commit.
"""


def rollback(state, checkpoint):
    state.restore(checkpoint)
    return state


def step(state, history):
    guess = speculate(history)
    return compute(state, guess)
