"""Unit tests for SharedBus, BackgroundTraffic and the Network transports."""

import pytest

from repro.des import AllOf, Environment
from repro.netsim import (
    BackgroundTraffic,
    BusNetwork,
    ConstantLatency,
    DelayNetwork,
    LinearLatency,
    SharedBus,
)


# --------------------------------------------------------------------------- bus
def test_bus_occupancy_formula():
    env = Environment()
    bus = SharedBus(env, bandwidth=1000.0, frame_overhead=0.1)
    assert bus.occupancy(500) == pytest.approx(0.6)


def test_bus_single_transfer_time():
    env = Environment()
    bus = SharedBus(env, bandwidth=100.0)

    done = bus.transfer(50)
    env.run(until=done)
    assert env.now == pytest.approx(0.5)


def test_bus_serializes_concurrent_transfers():
    env = Environment()
    bus = SharedBus(env, bandwidth=100.0)
    a = bus.transfer(100)  # 1s
    b = bus.transfer(100)  # must queue behind a
    env.run(until=AllOf(env, [a, b]))
    assert env.now == pytest.approx(2.0)


def test_bus_stats_accumulate():
    env = Environment()
    bus = SharedBus(env, bandwidth=100.0)
    done = bus.transfer(100)
    env.run(until=done)
    assert bus.bytes_transferred == 100
    assert bus.busy_time == pytest.approx(1.0)
    assert bus.utilisation() == pytest.approx(1.0)


def test_bus_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SharedBus(env, bandwidth=0)
    with pytest.raises(ValueError):
        SharedBus(env, bandwidth=1, frame_overhead=-1)
    bus = SharedBus(env, bandwidth=1)
    with pytest.raises(ValueError):
        bus.transfer(-1)


def test_bus_utilisation_zero_at_start():
    env = Environment()
    bus = SharedBus(env, bandwidth=1)
    assert bus.utilisation() == 0.0


def test_background_traffic_delays_foreground():
    def completion_time(with_bg: bool) -> float:
        env = Environment()
        bus = SharedBus(env, bandwidth=1000.0)
        if with_bg:
            BackgroundTraffic(rate=50.0, frame_bytes=100, seed=3).attach(bus, until=10.0)
        # Start foreground transfer at t=1 so background queue builds up.
        results = []

        def fg(env):
            yield env.timeout(1.0)
            yield bus.transfer(1000)
            results.append(env.now)

        done = env.process(fg(env))
        env.run(until=done)
        return results[0]

    assert completion_time(True) > completion_time(False)


def test_background_traffic_zero_rate_noop():
    env = Environment()
    bus = SharedBus(env, bandwidth=1000.0)
    BackgroundTraffic(rate=0.0).attach(bus)
    done = bus.transfer(100)
    env.run(until=done)
    assert env.now == pytest.approx(0.1)


def test_background_traffic_validation():
    with pytest.raises(ValueError):
        BackgroundTraffic(rate=-1)
    with pytest.raises(ValueError):
        BackgroundTraffic(rate=1, frame_bytes=-5)


def test_background_traffic_deterministic():
    def run_once() -> float:
        env = Environment()
        bus = SharedBus(env, bandwidth=500.0)
        BackgroundTraffic(rate=20.0, frame_bytes=200, seed=11).attach(bus, until=5.0)

        def fg(env):
            yield env.timeout(2.0)
            yield bus.transfer(500)
            return env.now

        done = env.process(fg(env))
        return env.run(until=done)

    assert run_once() == run_once()


# ----------------------------------------------------------------------- networks
def test_delay_network_delivery_time():
    env = Environment()
    net = DelayNetwork(env, ConstantLatency(0.25))
    ev = net.transmit(0, 1, 100)
    env.run(until=ev)
    assert env.now == pytest.approx(0.25)
    assert ev.value == (0, 1, 100)


def test_delay_network_default_zero_latency():
    env = Environment()
    net = DelayNetwork(env)
    ev = net.transmit(0, 1, 10)
    env.run(until=ev)
    assert env.now == 0.0


def test_delay_network_fifo_per_channel():
    """A later message on the same channel may not overtake an earlier one."""

    class Decreasing(ConstantLatency):
        """First message slow, second fast (would overtake without FIFO)."""

        def __init__(self):
            object.__setattr__(self, "seconds", 0.0)
            self.calls = 0

        def delay(self, src, dst, nbytes, now):
            self.calls += 1
            return 1.0 if self.calls == 1 else 0.1

    env = Environment()
    net = DelayNetwork(env, Decreasing())
    first = net.transmit(0, 1, 10)
    second = net.transmit(0, 1, 10)
    arrivals = {}

    def watch(env):
        yield first
        arrivals["first"] = env.now
        yield second
        arrivals["second"] = env.now

    done = env.process(watch(env))
    env.run(until=done)
    assert arrivals["first"] == pytest.approx(1.0)
    assert arrivals["second"] >= arrivals["first"]


def test_delay_network_distinct_channels_independent():
    env = Environment()
    net = DelayNetwork(env, ConstantLatency(0.5))
    a = net.transmit(0, 1, 10)
    b = net.transmit(2, 3, 10)
    env.run(until=AllOf(env, [a, b]))
    assert env.now == pytest.approx(0.5)  # fully parallel


def test_delay_network_accounting():
    env = Environment()
    net = DelayNetwork(env)
    net.transmit(0, 1, 100)
    net.transmit(1, 0, 200)
    assert net.messages_sent == 2
    assert net.bytes_sent == 300


def test_delay_network_rejects_negative_size():
    env = Environment()
    net = DelayNetwork(env)
    with pytest.raises(ValueError):
        net.transmit(0, 1, -1)


def test_bus_network_contention_grows_completion_time():
    """p concurrent messages on the bus finish ~p times later than one."""

    def total_time(n_messages: int) -> float:
        env = Environment()
        bus = SharedBus(env, bandwidth=1000.0)
        net = BusNetwork(env, bus)
        events = [net.transmit(i, (i + 1) % 8, 1000) for i in range(n_messages)]
        env.run(until=AllOf(env, events))
        return env.now

    t1 = total_time(1)
    t4 = total_time(4)
    assert t4 == pytest.approx(4 * t1)


def test_bus_network_endpoint_latency_overlaps():
    """Endpoint latency is paid in parallel; wire time serializes."""
    env = Environment()
    bus = SharedBus(env, bandwidth=1000.0)
    net = BusNetwork(env, bus, latency=ConstantLatency(0.5))
    a = net.transmit(0, 1, 1000)  # 0.5 + 1.0 wire
    b = net.transmit(2, 3, 1000)  # endpoint overlaps; wire queues
    env.run(until=AllOf(env, [a, b]))
    assert env.now == pytest.approx(0.5 + 1.0 + 1.0)


def test_bus_network_rejects_negative_size():
    env = Environment()
    net = BusNetwork(env, SharedBus(env, bandwidth=1))
    with pytest.raises(ValueError):
        net.transmit(0, 1, -1)


def test_bus_network_size_dependent_time():
    env = Environment()
    bus = SharedBus(env, bandwidth=100.0)
    net = BusNetwork(env, bus, latency=LinearLatency(overhead=0.1, bandwidth=1e9))
    ev = net.transmit(0, 1, 200)
    env.run(until=ev)
    assert env.now == pytest.approx(0.1 + 2.0)


def test_switched_network_parallel_disjoint_pairs():
    """Disjoint pairs transfer fully in parallel on a switch."""
    from repro.netsim import SwitchedNetwork

    env = Environment()
    net = SwitchedNetwork(env, nprocs=4, bandwidth=1000.0)
    a = net.transmit(0, 1, 1000)
    b = net.transmit(2, 3, 1000)
    env.run(until=AllOf(env, [a, b]))
    # store-and-forward: egress + ingress = 2 seconds, overlapped pairs
    assert env.now == pytest.approx(2.0)


def test_switched_network_contends_per_endpoint():
    """Two messages into the same receiver serialize at its ingress."""
    from repro.netsim import SwitchedNetwork

    env = Environment()
    net = SwitchedNetwork(env, nprocs=3, bandwidth=1000.0)
    a = net.transmit(0, 2, 1000)
    b = net.transmit(1, 2, 1000)
    env.run(until=AllOf(env, [a, b]))
    # egress overlaps (different senders); ingress serializes.
    assert env.now == pytest.approx(3.0)


def test_switched_network_validation():
    from repro.netsim import SwitchedNetwork

    env = Environment()
    with pytest.raises(ValueError):
        SwitchedNetwork(env, nprocs=0, bandwidth=1.0)
    with pytest.raises(ValueError):
        SwitchedNetwork(env, nprocs=2, bandwidth=0.0)
    net = SwitchedNetwork(env, nprocs=2, bandwidth=1.0)
    with pytest.raises(ValueError):
        net.transmit(0, 5, 10)
    with pytest.raises(ValueError):
        net.transmit(0, 1, -1)


def test_switched_beats_bus_for_all_to_all():
    """The switch removes shared-medium contention: the same all-to-all
    exchange completes much faster than on the bus."""
    from repro.netsim import SwitchedNetwork

    def total_time(make_net):
        env = Environment()
        net = make_net(env)
        events = [
            net.transmit(i, j, 1000)
            for i in range(6)
            for j in range(6)
            if i != j
        ]
        env.run(until=AllOf(env, events))
        return env.now

    bus_time = total_time(lambda env: BusNetwork(env, SharedBus(env, bandwidth=1000.0)))
    switch_time = total_time(lambda env: SwitchedNetwork(env, nprocs=6, bandwidth=1000.0))
    assert switch_time < 0.5 * bus_time
