"""Tests for the cluster collectives."""

import operator

import pytest

from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs
from repro.vm.collectives import (
    allgather,
    allreduce,
    barrier,
    broadcast,
    gather,
    reduce,
)


def make_cluster(p, latency=0.1):
    return Cluster(
        uniform_specs(p, capacity=1e6),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def test_barrier_synchronises_ranks():
    cluster = make_cluster(4)
    release_times = {}

    def program(proc):
        # Stagger arrivals: rank r arrives at t = r seconds.
        yield from proc.advance(float(proc.rank), phase="compute")
        yield from barrier(proc, tag="b0")
        release_times[proc.rank] = proc.env.now

    cluster.run(program)
    # Nobody is released before the last arrival (t = 3).
    assert min(release_times.values()) >= 3.0
    # All releases happen within one message round of each other.
    assert max(release_times.values()) - min(release_times.values()) < 0.5


def test_barrier_single_rank_noop():
    cluster = make_cluster(1)

    def program(proc):
        yield from barrier(proc, tag="b")
        return proc.env.now

    assert cluster.run(program) == [0.0]


def test_gather_collects_in_rank_order():
    cluster = make_cluster(3)

    def program(proc):
        out = yield from gather(proc, proc.rank * 10, tag="g")
        return out

    results = cluster.run(program)
    assert results[0] == [0, 10, 20]
    assert results[1] is None and results[2] is None


def test_gather_custom_root():
    cluster = make_cluster(3)

    def program(proc):
        out = yield from gather(proc, proc.rank, tag="g", root=2)
        return out

    results = cluster.run(program)
    assert results[2] == [0, 1, 2]
    assert results[0] is None


def test_broadcast_delivers_everywhere():
    cluster = make_cluster(4)

    def program(proc):
        value = "hello" if proc.rank == 0 else None
        out = yield from broadcast(proc, value, tag="bc")
        return out

    assert cluster.run(program) == ["hello"] * 4


def test_allgather_full_exchange():
    cluster = make_cluster(4)

    def program(proc):
        out = yield from allgather(proc, proc.rank**2, tag="ag")
        return out

    results = cluster.run(program)
    assert all(r == [0, 1, 4, 9] for r in results)


def test_reduce_folds_in_rank_order():
    cluster = make_cluster(4)

    def program(proc):
        out = yield from reduce(proc, proc.rank + 1, operator.mul, tag="r")
        return out

    results = cluster.run(program)
    assert results[0] == 24  # 1*2*3*4
    assert results[1] is None


def test_allreduce_same_result_everywhere():
    cluster = make_cluster(5)

    def program(proc):
        out = yield from allreduce(proc, proc.rank, operator.add, tag="ar")
        return out

    assert cluster.run(program) == [10] * 5


def test_allreduce_with_max():
    cluster = make_cluster(3)

    def program(proc):
        out = yield from allreduce(proc, (proc.rank * 7) % 5, max, tag="m")
        return out

    expected = max((r * 7) % 5 for r in range(3))
    assert cluster.run(program) == [expected] * 3


def test_concurrent_collectives_with_distinct_tags():
    cluster = make_cluster(3)

    def program(proc):
        a = yield from allgather(proc, proc.rank, tag="first")
        b = yield from allgather(proc, -proc.rank, tag="second")
        return (a, b)

    results = cluster.run(program)
    assert all(a == [0, 1, 2] and b == [0, -1, -2] for a, b in results)


def test_collectives_traverse_the_network():
    """Collectives must pay simulated latency, not complete instantly."""
    cluster = make_cluster(4, latency=0.5)

    def program(proc):
        yield from barrier(proc, tag="b")
        return proc.env.now

    times = cluster.run(program)
    # Root leaves after one inbound round (0.5 s); everyone else after
    # the outbound round too (1.0 s).
    assert times[0] >= 0.5
    assert all(t >= 1.0 for t in times[1:])


# ------------------------------------------------------ payload isolation
import copy

import numpy as np

from repro.vm.collectives import _is_immutable, isolate_payload
from repro.vm.message import Message


class TestIsolatePayloadParity:
    """The immutability fast path must not change isolation semantics:
    mutable payloads still come back as independent copies, immutable
    payloads may alias (nobody can mutate them)."""

    def test_mutable_payloads_are_still_isolated(self):
        for original in (
            [1, 2, 3],
            {"a": [1.0, 2.0]},
            {"nested": {"deep": [0]}},
            ([1], [2]),          # tuple of mutables is NOT immutable
            (np.arange(3),),     # tuple holding an ndarray
        ):
            reference = copy.deepcopy(original)
            isolated = isolate_payload(original)
            assert isolated is not original
            # Mutating the sender's object must not leak into the copy.
            if isinstance(original, list):
                original.append(99)
            elif isinstance(original, dict):
                next(iter(original.values()))
                original["mutant"] = True
            else:
                inner = original[0]
                if isinstance(inner, np.ndarray):
                    inner += 7
                else:
                    inner.append(99)
            if isinstance(isolated, tuple):
                for iso, ref in zip(isolated, reference):
                    assert np.array_equal(iso, ref) if isinstance(ref, np.ndarray) else iso == ref
            else:
                assert isolated == reference

    def test_ndarray_takes_copy_path(self):
        arr = np.arange(4.0)
        isolated = isolate_payload(arr)
        assert isolated is not arr
        arr[0] = -1.0
        assert isolated[0] == 0.0

    def test_immutable_payloads_pass_through(self):
        frozen_msg = Message(
            src=0, dst=1, tag=("vars", 3), payload=(1.0, 2.0),
            nbytes=16, sent_at=0.0,
        )
        for value in (
            None, True, 7, 3.5, 2j, "s", b"bytes",
            (1.0, 2.0, 3.0), (1, (2, (3,))), frozenset({1, 2}),
            frozen_msg,
        ):
            assert _is_immutable(value)
            assert isolate_payload(value) is value

    def test_message_with_mutable_payload_is_copied(self):
        msg = Message(
            src=0, dst=1, tag=("vars", 1), payload=[1, 2],
            nbytes=16, sent_at=0.0,
        )
        assert not _is_immutable(msg)
        isolated = isolate_payload(msg)
        assert isolated is not msg
        msg.payload.append(3)
        assert isolated.payload == [1, 2]

    def test_deeply_nested_tuple_falls_back_to_copy(self):
        # Beyond the probe's recursion bound the safe deep copy wins.
        value = (1.0,)
        for _ in range(20):
            value = (value,)
        isolated = isolate_payload(value)
        assert isolated == value


# ---------------------------------------------------------- property tests
import functools
import operator as _op

from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(2, 5),
    values=st.data(),
)
def test_property_allreduce_equals_functools_reduce(p, values):
    vals = [values.draw(st.integers(-100, 100)) for _ in range(p)]
    cluster = make_cluster(p, latency=0.05)

    def program(proc):
        out = yield from allreduce(proc, vals[proc.rank], _op.add, tag="prop")
        return out

    expected = functools.reduce(_op.add, vals)
    assert cluster.run(program) == [expected] * p


@settings(max_examples=30, deadline=None)
@given(p=st.integers(1, 5), seed=st.integers(0, 1000))
def test_property_allgather_is_rank_ordered_everywhere(p, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    vals = rng.integers(0, 1000, size=p).tolist()
    cluster = make_cluster(p, latency=0.02)

    def program(proc):
        out = yield from allgather(proc, vals[proc.rank], tag="pg")
        return out

    results = cluster.run(program)
    assert all(r == vals for r in results)
