"""One sanitizer, three transports: the runtime seat is uniform.

The registry-backed :class:`ProtocolSanitizer` now rides along on all
three backends (DES via ``Environment.sanitizer``/``DESTransport``,
loopback via ``LoopbackRunner(sanitize=...)``, pipes via
``PipeTransport(sanitize=...)``).  These tests feed each transport's
*real* notification path the effect stream a deliberately broken
engine hook would emit and assert all three trip the **same invariant
id** — plus an end-to-end loopback run with a genuinely ungated engine.
"""

import numpy as np
import pytest

from repro.analysis.modelcheck.scenario import DriftProgram
from repro.analysis.sanitizer import ProtocolSanitizer, ProtocolViolation
from repro.engine.core import SpecEngine, topology
from repro.engine.des_transport import DESTransport
from repro.engine.events import ComputeBegin, Send, Speculated
from repro.engine.loopback import LoopbackDeadlock, LoopbackRunner
from repro.engine.pipes import PipeTransport


def _TinyProgram():
    """Two ranks, three iterations, every speculation rejected."""
    return DriftProgram(nprocs=2, iterations=3)


#: The effect stream of a broken engine hook: a compute step entered
#: three iterations past the verified horizon under FW=0 — the exact
#: forward-window-bound breach an ungated window gate produces.
_BROKEN_STREAM = (
    Speculated(peer=1, iteration=0),
    ComputeBegin(iteration=2, verified_upto=-1, fw=0),
)

EXPECTED = "forward-window-bound"


class _StubEnv:
    now = 0.0


class _StubProc:
    rank = 0
    env = _StubEnv()


def _drip(notify):
    """Feed the broken stream through one transport's notify seat."""
    for effect in _BROKEN_STREAM:
        notify(effect)


def test_des_transport_seat_trips_forward_window_bound():
    transport = DESTransport(_StubProc(), sanitizer=ProtocolSanitizer())
    with pytest.raises(ProtocolViolation) as exc:
        _drip(transport._notify)
    assert exc.value.invariant == EXPECTED


def test_loopback_seat_trips_forward_window_bound():
    program = _TinyProgram()
    needed, audience = topology(program)
    engines = {
        rank: SpecEngine(program, rank, needed[rank], audience[rank], fw=0)
        for rank in range(2)
    }
    runner = LoopbackRunner(engines, sanitize=True)
    with pytest.raises(ProtocolViolation) as exc:
        _drip(lambda effect: runner._observe(0, effect))
    assert exc.value.invariant == EXPECTED


def test_pipe_transport_seat_trips_forward_window_bound():
    transport = PipeTransport(rank=0, conns={}, sanitize=True)
    with pytest.raises(ProtocolViolation) as exc:
        _drip(transport.notify)
    assert exc.value.invariant == EXPECTED


def test_loopback_end_to_end_ungated_engine_trips_same_invariant():
    """A real engine whose window gate is disabled runs unboundedly
    ahead under FW=0; the loopback seat must catch it mid-run."""
    program = _TinyProgram()
    needed, audience = topology(program)

    engines = {}
    for rank in range(2):
        engines[rank] = SpecEngine(
            program, rank, needed[rank], audience[rank], fw=0,
            pre_send_horizon=lambda engine, t: -(10 ** 9),
            window_ok=lambda engine, t: True,
        )
    runner = LoopbackRunner(engines, sanitize=True)
    with pytest.raises((ProtocolViolation, LoopbackDeadlock)) as exc:
        runner.run()
    assert isinstance(exc.value, ProtocolViolation)
    assert exc.value.invariant == EXPECTED


def test_loopback_clean_run_is_silent_with_sanitizer():
    program = _TinyProgram()
    needed, audience = topology(program)
    engines = {
        rank: SpecEngine(program, rank, needed[rank], audience[rank], fw=1)
        for rank in range(2)
    }
    runner = LoopbackRunner(engines, sanitize=True)
    finals = runner.run()
    assert set(finals) == {0, 1}
    assert runner.sanitizer is not None


def test_pipes_sequence_gap_is_caught_by_sanitizer_seat():
    """A wire-level seq skip reaches the sanitizer's on_delivery when
    the transport-level contiguity check is out of the way; the id is
    the registry's sequence-gap-freedom, same as specmc's."""
    san = ProtocolSanitizer()
    san.on_delivery(0, 1, 0)
    with pytest.raises(ProtocolViolation) as exc:
        san.on_delivery(0, 1, 2)
    assert exc.value.invariant == "sequence-gap-freedom"


def test_sanitize_flag_uniform_default_env(monkeypatch):
    """sanitize=None defers to REPRO_SANITIZE on every backend."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    program = _TinyProgram()
    needed, audience = topology(program)
    engines = {
        rank: SpecEngine(program, rank, needed[rank], audience[rank], fw=1)
        for rank in range(2)
    }
    assert LoopbackRunner(engines).sanitizer is not None
    assert PipeTransport(rank=0, conns={}).sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    engines2 = {
        rank: SpecEngine(program, rank, needed[rank], audience[rank], fw=1)
        for rank in range(2)
    }
    assert LoopbackRunner(engines2).sanitizer is None
    assert PipeTransport(rank=0, conns={}).sanitizer is None


def test_mp_worker_surfaces_sanitizer_and_send_seq():
    """Real processes: a sanitized run completes cleanly and messages
    still carry contiguous sequence numbers end to end."""
    from repro.parallel.runner import MPRunner

    result = MPRunner(_TinyProgram(), fw=1, sanitize=True).run(timeout=120)
    assert set(result.final_blocks) == {0, 1}
    assert np.isfinite(list(result.final_blocks.values())).all()
