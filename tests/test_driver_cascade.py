"""Tests for the cascade policy and deeper forward-window behaviour."""

import numpy as np
import pytest

from repro.core import SpeculativeDriver, run_program
from repro.netsim import ConstantLatency, DelayNetwork
from repro.partition import largest_remainder_round
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement, RandomDrift


def make_cluster(p, latency=0.0, capacity=1000.0):
    return Cluster(
        uniform_specs(p, capacity=capacity),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def test_cascade_policy_validation():
    prog = CoupledIncrement(nprocs=2, iterations=2)
    with pytest.raises(ValueError):
        SpeculativeDriver(prog, make_cluster(2), fw=1, cascade="sideways")


def test_cascade_none_equals_recompute_for_fw1():
    """With FW=1 the cascade range is always empty, so the policies
    coincide exactly."""
    def run(cascade):
        prog = RandomDrift(nprocs=3, iterations=6, threshold=0.0)
        r = run_program(prog, make_cluster(3, latency=0.5), fw=1, cascade=cascade)
        return r.makespan, {k: v.tolist() for k, v in r.final_blocks.items()}

    assert run("none") == run("recompute")


def test_cascade_recompute_more_expensive_under_fw2():
    """When FW=2 actually runs ahead and rejections happen, cascading
    full recomputes must cost at least as much virtual time."""
    def run(cascade):
        prog = RandomDrift(nprocs=2, iterations=10, threshold=0.0,
                           ops_per_compute=1000.0)
        cluster = make_cluster(2, latency=2.5, capacity=1000.0)
        return run_program(prog, cluster, fw=2, cascade=cascade)

    r_none = run("none")
    r_cascade = run("recompute")
    assert r_cascade.makespan >= r_none.makespan - 1e-9
    # The cascading run redoes more block-iterations.
    assert (
        sum(s.recomputes for s in r_cascade.stats)
        >= sum(s.recomputes for s in r_none.stats)
    )


def test_cascade_recompute_fw2_closer_to_reference():
    """Cascading repairs the local chain, so the final state deviates
    (weakly) less from the serial recurrence than no-cascade."""
    def deviation(cascade):
        prog = CoupledIncrement(
            nprocs=2, iterations=8, coupling=0.4, rates=[1.0, -1.0],
            threshold=0.0, ops_per_compute=1000.0,
        )
        cluster = make_cluster(2, latency=2.5, capacity=1000.0)
        r = run_program(prog, cluster, fw=2, cascade=cascade)
        ref = prog.reference_run()
        return max(
            float(np.max(np.abs(r.final_blocks[j] - ref[j]))) for j in range(2)
        )

    assert deviation("recompute") <= deviation("none") + 1e-12


def test_driver_needed_validation():
    class BadNeeded(CoupledIncrement):
        def needed(self, rank):
            return frozenset({rank})  # self-dependency: invalid

    prog = BadNeeded(nprocs=2, iterations=2)
    with pytest.raises(ValueError):
        SpeculativeDriver(prog, make_cluster(2), fw=1)


def test_largest_remainder_round():
    assert largest_remainder_round([1.5, 1.5]) == [2, 1]
    assert largest_remainder_round([2.0, 3.0]) == [2, 3]
    assert sum(largest_remainder_round([0.3, 0.3, 0.4])) == 1
    with pytest.raises(ValueError):
        largest_remainder_round([])
    with pytest.raises(ValueError):
        largest_remainder_round([-1.0, 2.0])
    with pytest.raises(ValueError):
        largest_remainder_round([0.5, 0.7])  # sums to 1.2: not integral


def test_send_ops_charged_to_sender():
    """A program declaring per-message pack cost slows its sender by
    exactly audience * send_ops / capacity per iteration."""

    class Packing(CoupledIncrement):
        def send_ops(self, rank):
            return 500.0  # half a compute phase per message

    def makespan(program_cls):
        prog = program_cls(
            nprocs=3, iterations=5, coupling=0.0, rates=[0.0, 0.0, 0.0],
            threshold=0.0, ops_per_compute=1000.0,
        )
        return run_program(prog, make_cluster(3, latency=0.0), fw=0).makespan

    free = makespan(CoupledIncrement)
    packed = makespan(Packing)
    # 4 sending iterations x 2 messages x 500 ops / 1000 ops/s = 4 s.
    assert packed == pytest.approx(free + 4.0)
