"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for artifact in ("fig2", "fig5", "fig8", "table2", "table3", "fig9"):
        assert artifact in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_light_experiment(capsys):
    assert main(["run", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "FIG5" in out
    assert "speculation" in out


def test_run_writes_output_file(tmp_path, capsys):
    target = tmp_path / "fig6.txt"
    assert main(["run", "fig6", "--out", str(target)]) == 0
    assert target.exists()
    assert "FIG6" in target.read_text()


def test_nbody_command(capsys):
    rc = main([
        "nbody", "--p", "2", "--fw", "1",
        "--particles", "100", "--iterations", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "rejected speculation" in out


def test_nbody_shares_run_flags(capsys):
    rc = main([
        "nbody", "--p", "2", "--particles", "64", "--iterations", "3",
        "--backend", "loopback", "--fw", "1",
    ])
    assert rc == 0
    assert "scheduler rounds" in capsys.readouterr().out


def test_mp_only_flags_rejected_off_mp(capsys):
    # --latency must be a usage error on a clockless backend, not a
    # silent no-op.
    rc = main([
        "nbody", "--p", "2", "--particles", "64", "--iterations", "3",
        "--backend", "loopback", "--latency", "0.05",
    ])
    assert rc == 2
    err = capsys.readouterr().err
    assert "--latency" in err
    assert "--backend mp" in err

    rc = main(["jacobi", "-p", "2", "--jitter", "0.5"])
    assert rc == 2
    assert "--jitter" in capsys.readouterr().err


def test_jacobi_command(capsys):
    rc = main([
        "jacobi", "-p", "4", "-n", "48", "--iterations", "10",
        "--backend", "loopback", "--sanitize",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "residual" in out
    assert "rejected speculation" in out


def test_chaos_command_verifies_bit_identical(capsys):
    rc = main([
        "chaos", "-p", "4", "-n", "32", "--iterations", "10",
        "--backend", "loopback", "--fw", "1",
        "--drop", "0.1", "--straggler", "1:2.0", "--fault-seed", "7",
        "--verify",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "injected" in out
    assert "0 outstanding" in out
    assert "bit-identical" in out


def test_chaos_plan_file(tmp_path, capsys):
    from repro.faults import EdgeFault, FaultPlan

    plan = FaultPlan(seed=7, edges=(EdgeFault(kind="drop", rate=0.1),))
    path = tmp_path / "plan.json"
    plan.save(str(path))
    rc = main([
        "chaos", "-p", "4", "-n", "32", "--iterations", "10",
        "--backend", "loopback", "--fw", "1", "--plan", str(path),
    ])
    assert rc == 0
    assert "injected" in capsys.readouterr().out


def test_chaos_plan_excludes_inline_flags(capsys):
    rc = main([
        "chaos", "-p", "2", "--plan", "whatever.json", "--drop", "0.1",
    ])
    assert rc == 2


def test_chaos_unrecovered_loss_reported(capsys):
    rc = main([
        "chaos", "-p", "2", "-n", "16", "--iterations", "4",
        "--backend", "loopback", "--fw", "1",
        "--drop", "1.0", "--no-retransmit",
    ])
    assert rc == 1
    assert "unrecovered loss" in capsys.readouterr().out


def test_chaos_crash_reported(capsys):
    rc = main([
        "chaos", "-p", "2", "-n", "16", "--iterations", "8",
        "--backend", "loopback", "--fw", "1", "--crash", "1:3",
    ])
    assert rc == 1
    assert "planned crash" in capsys.readouterr().out


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_run_writes_json(tmp_path, capsys):
    import json

    target = tmp_path / "fig5.json"
    assert main(["run", "fig5", "--json", str(target)]) == 0
    data = json.loads(target.read_text())
    assert data["experiment_id"] == "FIG5"
    assert len(data["rows"]) == 16
    assert all(isinstance(v, (int, float)) for v in data["rows"][0])
