"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for artifact in ("fig2", "fig5", "fig8", "table2", "table3", "fig9"):
        assert artifact in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_light_experiment(capsys):
    assert main(["run", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "FIG5" in out
    assert "speculation" in out


def test_run_writes_output_file(tmp_path, capsys):
    target = tmp_path / "fig6.txt"
    assert main(["run", "fig6", "--out", str(target)]) == 0
    assert target.exists()
    assert "FIG6" in target.read_text()


def test_nbody_command(capsys):
    rc = main([
        "nbody", "--p", "2", "--fw", "1",
        "--particles", "100", "--iterations", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "rejected speculation" in out


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_run_writes_json(tmp_path, capsys):
    import json

    target = tmp_path / "fig5.json"
    assert main(["run", "fig5", "--json", str(target)]) == 0
    data = json.loads(target.read_text())
    assert data["experiment_id"] == "FIG5"
    assert len(data["rows"]) == 16
    assert all(isinstance(v, (int, float)) for v in data["rows"][0])
