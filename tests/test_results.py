"""Unit tests for RunResult aggregation, SpecStats and speedup helpers."""

import pytest

from repro.core import RunResult, SpecStats, speedup, speedup_max
from repro.trace import PhaseTrace


def make_result(fw=1, iterations=4):
    t0 = PhaseTrace(rank=0)
    t1 = PhaseTrace(rank=1)
    # iteration 0: compute only; iterations 1..3: compute + comm
    clock = 0.0
    for it in range(iterations):
        t0.record("compute", clock, clock + 2.0, iteration=it)
        t1.record("compute", clock, clock + 2.0, iteration=it)
        if it > 0:
            t0.record("comm", clock + 2.0, clock + 3.0, iteration=it)
            t1.record("correct", clock + 2.0, clock + 2.5, iteration=it)
        clock += 3.0
    stats = [
        SpecStats(rank=0, spec_made=6, spec_accepted=5, spec_rejected=1, checks=6,
                  recomputes=1, iterations=iterations),
        SpecStats(rank=1, spec_made=6, spec_accepted=3, spec_rejected=3, checks=6,
                  recomputes=4, iterations=iterations),
    ]
    return RunResult(
        makespan=clock,
        final_blocks={0: None, 1: None},
        traces=[t0, t1],
        stats=stats,
        fw=fw,
        iterations=iterations,
        capacities=[2.0, 1.0],
    )


def test_basic_properties():
    r = make_result()
    assert r.nprocs == 2
    assert r.time_per_iteration == pytest.approx(3.0)
    assert "FW=1" in repr(r)


def test_breakdown_max_over_ranks():
    r = make_result()
    b = r.breakdown()
    assert b["compute"] == pytest.approx(8.0)
    assert b["comm"] == pytest.approx(3.0)
    assert b["correct"] == pytest.approx(1.5)


def test_per_iteration_breakdown():
    r = make_result()
    b = r.per_iteration_breakdown()
    assert b["compute"] == pytest.approx(2.0)


def test_steady_breakdown_excludes_warmup():
    r = make_result()
    b = r.steady_breakdown(skip=1)
    # Steady-state comm: 3 intervals of 1.0 over 3 iterations = 1.0.
    assert b["comm"] == pytest.approx(1.0)
    assert b["compute"] == pytest.approx(2.0)


def test_steady_breakdown_validation():
    r = make_result()
    with pytest.raises(ValueError):
        r.steady_breakdown(skip=4)
    with pytest.raises(ValueError):
        r.steady_breakdown(skip=-1)


def test_rejection_and_recompute_rates():
    r = make_result()
    assert r.rejection_rate == pytest.approx(4 / 12)
    assert r.recompute_fraction == pytest.approx(5 / 12)


def test_rates_zero_when_no_checks():
    r = make_result()
    for s in r.stats:
        s.checks = s.spec_rejected = s.spec_accepted = s.recomputes = 0
    assert r.rejection_rate == 0.0
    assert r.recompute_fraction == 0.0


def test_measured_k_ratio():
    r = make_result()
    k = r.measured_k()
    # steady correct on rank 1 = 0.5/iter, compute = 2.0/iter, max over
    # ranks per phase: correct 0.5, compute 2.0 -> 0.25.
    assert k == pytest.approx(0.25)


def test_spec_stats_rejection_rate():
    s = SpecStats(rank=0, checks=10, spec_rejected=3)
    assert s.rejection_rate == pytest.approx(0.3)
    assert SpecStats(rank=0).rejection_rate == 0.0


def test_speedup_helpers():
    assert speedup(10.0, 2.0) == 5.0
    with pytest.raises(ValueError):
        speedup(0.0, 1.0)
    with pytest.raises(ValueError):
        speedup(1.0, -1.0)
    assert speedup_max([4.0, 2.0, 2.0]) == 2.0
    with pytest.raises(ValueError):
        speedup_max([])
    with pytest.raises(ValueError):
        speedup_max([1.0, 0.0])


def test_summary_is_json_serialisable():
    import json

    r = make_result()
    data = r.summary()
    encoded = json.dumps(data)
    assert "time_per_iteration" in encoded
    assert data["nprocs"] == 2
    assert data["fw"] == 1
    assert data["steady_phase_seconds"]["compute"] == pytest.approx(2.0)
    assert data["rejection_rate"] == pytest.approx(4 / 12)
