"""SPB401 (interprocedural): the append hides one call away.

The protocol loop never says ``.append`` itself — it hands the buffer
to a helper.  The buffer summaries must carry the helper's append back
to the call site.
"""


def stash(buf, item):
    buf.append(item)


class Accumulator:
    def __init__(self):
        self.journal = []

    def compute(self, blocks):
        for block in blocks:
            stash(self.journal, block)
