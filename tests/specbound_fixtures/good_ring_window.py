"""Bounded history: a deque capped by the backward window fires nothing."""

from collections import deque


class BoundedHistory:
    def __init__(self, bw):
        self.history = deque(maxlen=bw)

    def record_arrival(self, t, block):
        self.history.append((t, block))

    def recv(self, batch):
        for t, block in batch:
            self.history.append((t, block))
