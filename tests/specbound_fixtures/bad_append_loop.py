"""SPB401: a protocol-reachable buffer grows in a loop, nothing trims it."""


class Receiver:
    def __init__(self):
        self.arrivals = []

    def recv(self, messages):
        for msg in messages:
            self.arrivals.append(msg)
