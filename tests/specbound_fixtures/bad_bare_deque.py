"""SPB403: a ring-like deque allocated without a cap."""

from collections import deque


class History:
    def __init__(self, bw):
        self.bw = bw
        self.hist = deque()

    def push(self, t, value):
        self.hist.append((t, value))
