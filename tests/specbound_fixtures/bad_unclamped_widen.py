"""SPB405: the window widens with no ceiling in scope."""


class GreedyWindow:
    def on_iteration(self, t, fw, rejects):
        if rejects == 0:
            return fw + 1
        return fw
