"""SPB406: a trace buffer on the protocol path grows with run length."""


class Recorder:
    def __init__(self):
        self.events = []

    def record_arrival(self, src, t, block):
        self.events.append((src, t, block))
