"""Bounded inbox: every receive-path append is paired with a drain."""


class DrainedInbox:
    def __init__(self, fw):
        self.fw = fw
        self.pending = []
        self.results = {}

    def recv(self, src, message):
        self.pending.append((src, message))

    def deliver(self):
        while self.pending:
            src, message = self.pending.pop(0)
            self.consume(src, message)

    def consume(self, src, message):
        pass

    def compute(self, t, block):
        self.results[t] = block

    def prune(self, horizon):
        for t in [key for key in self.results if key < horizon]:
            del self.results[t]
