"""SPB407: a cascade correction loop with no window-derived guard."""


class Corrector:
    def cascade(self, t, limit):
        for t2 in range(t + 1, limit):
            self.redo(t2)

    def redo(self, t2):
        pass
