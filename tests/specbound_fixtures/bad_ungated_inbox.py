"""SPB404: the receive path grows an inbox nothing drains."""


class Inbox:
    def __init__(self):
        self.pending = []

    def recv(self, src, message):
        self.pending.append((src, message))
