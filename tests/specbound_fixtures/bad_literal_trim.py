"""SPB402: history trimmed to a literal instead of the backward window."""


class Tracker:
    def __init__(self, bw):
        self.bw = bw
        self.history = []

    def note(self, t, value):
        self.history.append((t, value))
        self.history = self.history[-4:]
