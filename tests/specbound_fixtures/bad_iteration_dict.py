"""SPB408: per-iteration state stored and never evicted."""


class Ledger:
    def __init__(self):
        self.blocks = {}

    def compute(self, t, block):
        self.blocks[t] = block
