"""Unit tests for latency models."""

import pytest

from repro.netsim import (
    CompositeLatency,
    ConstantLatency,
    LinearLatency,
    PerProcessorScaledLatency,
    StochasticLatency,
    TransientSpikes,
    UniformLatency,
)
from repro.netsim.latency import Spike


def test_constant_latency():
    m = ConstantLatency(0.5)
    assert m.delay(0, 1, 1000, 0.0) == 0.5
    assert m.delay(3, 7, 0, 99.0) == 0.5


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1)


def test_linear_latency_affine_in_size():
    m = LinearLatency(overhead=0.1, bandwidth=1000.0)
    assert m.delay(0, 1, 0, 0.0) == pytest.approx(0.1)
    assert m.delay(0, 1, 500, 0.0) == pytest.approx(0.6)


def test_linear_latency_validation():
    with pytest.raises(ValueError):
        LinearLatency(overhead=-1)
    with pytest.raises(ValueError):
        LinearLatency(bandwidth=0)


def test_per_processor_scaling():
    base = ConstantLatency(1.0)
    m1 = PerProcessorScaledLatency(base, nprocs=1, slope=0.5)
    m16 = PerProcessorScaledLatency(base, nprocs=16, slope=0.5)
    assert m1.delay(0, 1, 0, 0) == pytest.approx(1.0)
    assert m16.delay(0, 1, 0, 0) == pytest.approx(1.0 + 0.5 * 15)


def test_per_processor_scaling_is_linear_in_p():
    base = ConstantLatency(2.0)
    delays = [
        PerProcessorScaledLatency(base, nprocs=p, slope=1.0).delay(0, 1, 0, 0)
        for p in range(1, 17)
    ]
    diffs = [b - a for a, b in zip(delays, delays[1:])]
    assert all(d == pytest.approx(diffs[0]) for d in diffs)


def test_per_processor_scaling_validation():
    with pytest.raises(ValueError):
        PerProcessorScaledLatency(ConstantLatency(1), nprocs=0)
    with pytest.raises(ValueError):
        PerProcessorScaledLatency(ConstantLatency(1), nprocs=2, slope=-1)


def test_uniform_latency_within_bounds_and_deterministic():
    m1 = UniformLatency(0.1, 0.5, seed=7)
    m2 = UniformLatency(0.1, 0.5, seed=7)
    seq1 = [m1.delay(0, 1, 0, 0) for _ in range(50)]
    seq2 = [m2.delay(0, 1, 0, 0) for _ in range(50)]
    assert seq1 == seq2
    assert all(0.1 <= d <= 0.5 for d in seq1)


def test_uniform_latency_validation():
    with pytest.raises(ValueError):
        UniformLatency(0.5, 0.1)
    with pytest.raises(ValueError):
        UniformLatency(-0.1, 0.5)


def test_stochastic_sigma_zero_is_base():
    base = ConstantLatency(2.0)
    m = StochasticLatency(base, sigma=0.0, seed=1)
    assert m.delay(0, 1, 0, 0) == 2.0


def test_stochastic_jitter_positive_and_deterministic():
    base = ConstantLatency(1.0)
    a = StochasticLatency(base, sigma=0.3, seed=42)
    b = StochasticLatency(base, sigma=0.3, seed=42)
    sa = [a.delay(0, 1, 0, 0) for _ in range(100)]
    sb = [b.delay(0, 1, 0, 0) for _ in range(100)]
    assert sa == sb
    assert all(d > 0 for d in sa)
    assert len(set(sa)) > 1  # actually jitters


def test_stochastic_negative_sigma_rejected():
    with pytest.raises(ValueError):
        StochasticLatency(ConstantLatency(1), sigma=-0.1)


def test_spike_matching_rules():
    s = Spike(extra=5.0, t_start=1.0, t_end=2.0, src=0, dst=1)
    assert s.applies(0, 1, 1.5)
    assert not s.applies(0, 1, 2.0)  # window is half-open
    assert not s.applies(0, 1, 0.5)
    assert not s.applies(1, 0, 1.5)
    wildcard = Spike(extra=1.0)
    assert wildcard.applies(7, 3, 123.0)


def test_transient_spikes_add_only_in_window():
    base = ConstantLatency(1.0)
    m = TransientSpikes(base, spikes=[Spike(extra=10.0, t_start=0.0, t_end=0.5, src=0, dst=1)])
    assert m.delay(0, 1, 0, 0.0) == pytest.approx(11.0)
    assert m.delay(0, 1, 0, 1.0) == pytest.approx(1.0)
    assert m.delay(1, 0, 0, 0.0) == pytest.approx(1.0)


def test_composite_sums_components():
    m = CompositeLatency([ConstantLatency(1.0), LinearLatency(overhead=0.5, bandwidth=100)])
    assert m.delay(0, 1, 100, 0) == pytest.approx(1.0 + 0.5 + 1.0)


def test_composite_flattens_nested():
    inner = CompositeLatency([ConstantLatency(1), ConstantLatency(2)])
    outer = CompositeLatency([inner, ConstantLatency(3)])
    assert len(outer.models) == 3
    assert outer.delay(0, 1, 0, 0) == 6


def test_composite_via_add_operator():
    m = ConstantLatency(1.0) + ConstantLatency(2.0)
    assert isinstance(m, CompositeLatency)
    assert m.delay(0, 1, 0, 0) == 3.0


def test_composite_empty_rejected():
    with pytest.raises(ValueError):
        CompositeLatency([])
