"""Tests for specmc — the exhaustive interleaving model checker.

Covers the whole pipeline: exhaustive exploration of bounded configs,
the schedule-independence (determinism) property, mutation-injected
bugs caught with their expected invariant ids, ddmin shrinking,
counterexample emission (replayable trace + generated regression
test), the pinned historical SPF111 counterexample, and the ``repro
mc`` CLI surface.
"""

import json
import pathlib

import pytest

from repro.analysis.modelcheck import (
    MUTATIONS,
    Action,
    Budget,
    McConfig,
    build_program,
    emit_test,
    emit_trace,
    explore,
    random_schedules,
    render_json,
    render_sarif_mc,
    replay_schedule,
    schedule_from_json,
    schedule_to_json,
    shrink_schedule,
)
from repro.cli import main
from repro.engine.loopback import run_loopback
from repro.trace.events import EventLog

SMALL = McConfig(p=2, fw=1, bw=1, iters=3)


# ------------------------------------------------------------- exploration
def test_exhaustive_exploration_small_config_is_clean():
    result = explore(SMALL)
    assert result.violation is None
    assert result.exhausted
    assert result.explored > 0
    assert result.deduped > 0          # fingerprint dedup engaged
    assert result.sleep_pruned > 0     # DPOR engaged
    assert result.executions > 0
    assert result.max_depth > 0


def test_exploration_covers_both_scenarios_and_cascades():
    for scenario in ("drift", "constant"):
        for cascade in ("recompute", "none"):
            config = McConfig(p=2, fw=1, bw=1, iters=2,
                              scenario=scenario, cascade=cascade)
            result = explore(config)
            assert result.violation is None, (scenario, cascade)
            assert result.exhausted


def test_budget_limits_the_search():
    budget = Budget(max_states=5)
    result = explore(McConfig(p=3, fw=1, bw=1, iters=3), budget=budget)
    assert not result.exhausted
    assert result.explored <= 6  # the check runs per expansion


def test_budget_parse():
    assert Budget.parse("60s").max_seconds == 60.0
    assert Budget.parse("2m").max_seconds == 120.0
    assert Budget.parse("500ms").max_seconds == 0.5
    assert Budget.parse("5000").max_states == 5000
    with pytest.raises(ValueError):
        Budget.parse("one eternity")


def test_config_bounds_are_enforced():
    with pytest.raises(ValueError):
        McConfig(p=4)
    with pytest.raises(ValueError):
        McConfig(p=2, fw=3)
    with pytest.raises(ValueError):
        McConfig(p=2, iters=9)
    with pytest.raises(ValueError):
        McConfig(p=2, scenario="chaotic")


# ------------------------------------------- determinism (schedule freedom)
@pytest.mark.parametrize("scenario", ["drift", "constant"])
def test_random_schedules_replay_bit_identical_to_loopback(scenario):
    """25 random explored schedules must all land on the canonical
    round-robin finals bit for bit (theta = 0, FW <= 1 exactness)."""
    config = McConfig(p=3, fw=1, bw=1, iters=3, scenario=scenario)
    canonical, _stats, _runner = run_loopback(
        build_program(config), fw=config.fw, cascade=config.cascade
    )
    samples = random_schedules(config, n=25, seed=7)
    assert len(samples) == 25
    seen = set()
    for sample in samples:
        assert sample.violation is None
        assert sample.finals == canonical  # exact float equality
        seen.add(sample.schedule)
    assert len(seen) > 1  # the walks genuinely differ


def test_replay_is_deterministic():
    sample = random_schedules(SMALL, n=1, seed=3)[0]
    once = replay_schedule(SMALL, sample.schedule)
    twice = replay_schedule(SMALL, sample.schedule)
    assert once.finals == twice.finals
    assert once.violation is None and twice.violation is None


# ---------------------------------------------------------------- mutations
@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_each_mutation_is_caught_with_its_expected_invariant(name):
    mutation = MUTATIONS[name]
    config = (
        McConfig(p=2, fw=0, bw=1, iters=2)
        if name == "ungated-window"
        else SMALL
    )
    result = explore(config, mutation=name)
    assert result.violation is not None, name
    assert result.violation.invariant == mutation.expected_invariant


def test_unknown_mutation_is_rejected():
    with pytest.raises(ValueError):
        explore(SMALL, mutation="not-a-mutation")


# ----------------------------------------------------------------- shrinking
def test_shrunk_schedule_still_reproduces_and_is_smaller():
    result = explore(SMALL, mutation="no-seq-floor")
    assert result.violation is not None
    original = result.violation.schedule
    shrunk = shrink_schedule(
        SMALL, original, result.violation.invariant, mutation="no-seq-floor"
    )
    assert len(shrunk) <= len(original)
    outcome = replay_schedule(SMALL, shrunk, mutation="no-seq-floor")
    assert outcome.violation is not None
    assert outcome.violation.invariant == result.violation.invariant


# -------------------------------------------------- counterexample emission
def test_emit_trace_is_replayable_jsonl(tmp_path):
    result = explore(SMALL, mutation="no-seq-floor")
    schedule = result.violation.schedule
    path = tmp_path / "ce.jsonl"
    outcome = emit_trace(SMALL, schedule, path, mutation="no-seq-floor")
    assert outcome.violation is not None
    log = EventLog.load(path)
    assert len(log) > 0
    kinds = {event.kind for event in log}
    assert "send" in kinds and "recv" in kinds


def test_emitted_trace_confirms_spf111_via_dynamic_replay(tmp_path):
    """The model checker's counterexample is the same artifact class a
    recorded run produces: ``repro analyze --trace`` must flag the
    overtaking delivery (the SPF111 dynamic mirror)."""
    from repro.analysis import cross_reference

    result = explore(SMALL, mutation="no-seq-floor")
    path = tmp_path / "ce.jsonl"
    emit_trace(SMALL, result.violation.schedule, path, mutation="no-seq-floor")
    report, _verdicts = cross_reference([], EventLog.load(path))
    assert any("SPF111" in f.format_text() for f in report.findings), [
        f.format_text() for f in report.findings
    ]


def test_emit_test_generates_failing_then_passing_regression(tmp_path):
    """The generated pytest fails while the bug exists (mutated replay)
    and the same schedule is clean on the fixed (real) engine."""
    result = explore(SMALL, mutation="no-seq-floor")
    schedule = result.violation.schedule
    path = tmp_path / "test_ce_regress.py"
    source = emit_test(
        SMALL, schedule, result.violation.invariant, path,
        mutation="no-seq-floor", details=result.violation.details,
    )
    assert path.read_text() == source
    namespace: dict = {}
    exec(compile(source, str(path), "exec"), namespace)
    test_fn = next(v for k, v in namespace.items() if k.startswith("test_"))
    with pytest.raises(AssertionError, match="history-ring-bound"):
        test_fn()  # bug "present": the pinned interleaving violates
    # The fixed engine (no mutation) survives the same interleaving.
    clean = replay_schedule(SMALL, schedule, mutation=None)
    assert clean.violation is None


# ------------------------------------- pinned historical SPF111 counterexample
#: The shrunk counterexample specmc finds for the pre-fix engine
#: (per-destination sequence stamps ignored at the receiver): rank 1
#: skips past its first TryRecv polls, then receives rank 0's
#: iteration-2 block *before* its iteration-1 block.  Pinned so the
#: shrinker/replay pipeline and the engine fix are both regression-
#: locked end to end.
PINNED_SPF111_SCHEDULE = (
    Action("skip", 0),
    Action("skip", 0),
    Action("skip", 0),
    Action("skip", 1),
    Action("skip", 1),
    Action("deliver", 0, src=1),
    Action("deliver", 1, src=0, idx=1),
)


def test_pinned_spf111_counterexample_reproduces_on_prefix_engine():
    outcome = replay_schedule(
        SMALL, PINNED_SPF111_SCHEDULE, mutation="no-seq-floor"
    )
    assert outcome.violation is not None
    assert outcome.violation.invariant == "history-ring-bound"
    assert "SPF111" in outcome.violation.details


def test_pinned_spf111_counterexample_is_clean_on_fixed_engine():
    """The shipped engine floors each arrival at its predecessor's
    sequence number, so the very same interleaving is harmless."""
    outcome = replay_schedule(SMALL, PINNED_SPF111_SCHEDULE, mutation=None)
    assert outcome.violation is None
    assert outcome.completed


# ------------------------------------------------------------- serialisation
def test_schedule_json_roundtrip():
    schedule = PINNED_SPF111_SCHEDULE
    data = schedule_to_json(schedule)
    assert schedule_from_json(data) == schedule
    assert schedule_from_json(json.loads(json.dumps(data))) == schedule


def test_action_describe_is_stable():
    assert Action("deliver", 1, src=0).describe() == "deliver(0->1)"
    assert Action("deliver", 1, src=0, idx=1).describe() == "deliver(0->1, idx=1)"
    assert Action("skip", 0).describe() == "skip(rank=0)"


# ---------------------------------------------------------------- reporters
def test_render_json_document_shape():
    result = explore(SMALL)
    doc = json.loads(render_json([result]))
    assert doc["tool"] == "specmc"
    assert doc["clean"] is True
    assert doc["exhausted"] is True
    run = doc["runs"][0]
    assert run["config"]["p"] == 2
    assert run["explored"] == result.explored


def test_render_sarif_contains_rule_and_schedule():
    result = explore(SMALL, mutation="seq-skip")
    assert result.violation is not None
    doc = json.loads(render_sarif_mc([result]))
    results = doc["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["ruleId"] == "sequence-gap-freedom"
    assert results[0]["properties"]["schedule"]


# ---------------------------------------------------------------------- CLI
def test_cli_mc_clean_exit_zero(capsys):
    assert main(["mc", "--p", "2", "--fw", "1", "--iters", "3"]) == 0
    out = capsys.readouterr().out
    assert "exhausted" in out and "specmc: clean" in out


def test_cli_mc_mutation_exit_one_and_artifacts(capsys, tmp_path):
    report = tmp_path / "mc.json"
    trace = tmp_path / "ce.jsonl"
    test_file = tmp_path / "test_ce.py"
    rc = main([
        "mc", "--p", "2", "--fw", "1", "--iters", "3",
        "--mutate", "no-seq-floor",
        "--report", str(report),
        "--emit-trace", str(trace),
        "--emit-test", str(test_file),
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "VIOLATION" in out and "shrunk" in out
    doc = json.loads(report.read_text())
    assert doc["clean"] is False
    assert doc["runs"][0]["shrunk_schedule"]
    assert EventLog.load(trace)
    assert "history_ring_bound" in test_file.read_text()


def test_cli_mc_usage_errors(capsys):
    assert main(["mc", "--p", "9"]) == 2
    assert main(["mc", "--mutate", "bogus"]) == 2
    assert main(["mc", "--budget", "sideways"]) == 2
    assert main(["mc", "--p", "2,banana"]) == 2


def test_cli_mc_sweep_and_json_format(capsys):
    rc = main([
        "mc", "--p", "2", "--fw", "0,1", "--iters", "2",
        "--format", "json", "--budget", "60s",
    ])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert len(doc["runs"]) == 2
    assert doc["exhausted"] is True


# ----------------------------------------------------- liveness / deadlock
def test_drop_message_mutation_is_reported_as_retransmit_bounded():
    # Since the engine grew gap detection, a silently dropped message
    # is no longer an anonymous deadlock: the receiver *requests*
    # retransmission, the mutated transport never answers, and the
    # wedge is attributed to the broken recovery contract.
    result = explore(SMALL, mutation="drop-message")
    assert result.violation is not None
    assert result.violation.invariant == "retransmit-bounded"
    # The counterexample replays: same id under best-effort replay.
    outcome = replay_schedule(
        SMALL, result.violation.schedule, mutation="drop-message"
    )
    assert outcome.violation is not None
    assert outcome.violation.invariant == "retransmit-bounded"
    assert not outcome.deadlocked
