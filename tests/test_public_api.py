"""The public API surface: imports, __all__, version, module entry."""

import subprocess
import sys

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_key_classes_importable_from_top_level():
    from repro import (  # noqa: F401
        Cluster,
        CoupledMapLattice,
        HeatEquation1D,
        HeatEquation2D,
        JacobiSolver,
        KuramotoProgram,
        MPRunner,
        NBodyProgram,
        PerformanceModel,
        SpeculativeDriver,
        SyncIterativeProgram,
        WaveEquation1D,
        run_program,
        wustl_1994,
    )


def test_subpackages_importable():
    import repro.core
    import repro.core.adaptive
    import repro.core.receive_driven
    import repro.des
    import repro.harness
    import repro.nbody.barneshut
    import repro.netsim
    import repro.parallel
    import repro.partition
    import repro.perfmodel.extended
    import repro.platforms
    import repro.trace
    import repro.vm.collectives  # noqa: F401


def test_python_dash_m_entry():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True, text=True, timeout=120,
    )
    assert out.returncode == 0
    assert "fig8" in out.stdout
