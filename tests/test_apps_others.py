"""Integration tests for the heat-equation, Jacobi and Kuramoto apps."""

import numpy as np
import pytest

from repro.apps import HeatEquation1D, JacobiSolver, KuramotoProgram
from repro.apps.jacobi import diagonally_dominant_system
from repro.core import run_program
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs


def make_cluster(p, latency=0.0, capacity=1e6):
    return Cluster(
        uniform_specs(p, capacity=capacity),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


# ------------------------------------------------------------ heat equation
def heat_program(n=64, p=4, iterations=10, **kw):
    rng = np.random.default_rng(0)
    initial = rng.uniform(0.0, 1.0, size=n)
    kw.setdefault("threshold", 0.0)
    return HeatEquation1D(initial, [1e6] * p, iterations, r=0.25, boundary=(1.0, 0.0), **kw)


def test_heat_validation():
    with pytest.raises(ValueError):
        HeatEquation1D(np.zeros((2, 2)), [1.0], 5)
    with pytest.raises(ValueError):
        HeatEquation1D(np.zeros(10), [1.0, 1.0], 5, r=0.6)
    with pytest.raises(ValueError):
        HeatEquation1D(np.zeros(10), [1.0, 1.0], 5, r=0.0)
    from repro.partition import cyclic_partition

    with pytest.raises(ValueError):
        HeatEquation1D(np.zeros(10), [1.0, 1.0], 5, partition=cyclic_partition(10, 2))


def test_heat_topology_neighbors_only():
    prog = heat_program(p=4)
    assert prog.needed(0) == frozenset({1})
    assert prog.needed(1) == frozenset({0, 2})
    assert prog.needed(3) == frozenset({2})


def test_heat_fw0_matches_reference():
    prog = heat_program()
    result = run_program(prog, make_cluster(4, latency=0.1), fw=0)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-12)


def test_heat_fw1_theta_zero_exact():
    prog = heat_program()
    result = run_program(prog, make_cluster(4, latency=0.5), fw=1)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-10)


def test_heat_incremental_correction_exact():
    """Edge-cell fix-up equals full recomputation."""
    prog = heat_program(n=32, p=2)
    inputs = {0: prog.initial_block(0), 1: prog.initial_block(1)}
    wrong = inputs[1] + 0.2
    tainted = dict(inputs)
    tainted[1] = wrong
    bad_next = prog.compute(0, tainted, 0)
    fixed, ops = prog.correct(0, bad_next, tainted, 1, wrong, inputs[1], 0)
    clean = prog.compute(0, inputs, 0)
    np.testing.assert_allclose(fixed, clean, atol=1e-14)
    assert ops == 4.0


def test_heat_messages_only_between_neighbors():
    prog = heat_program(p=4, iterations=5)
    result = run_program(prog, make_cluster(4, latency=0.1), fw=1)
    # Interior ranks send to 2 neighbors, edge ranks to 1, per iteration
    # after the first.
    sends = [s.messages_sent for s in result.stats]
    assert sends[0] == (prog.iterations - 1) * 1
    assert sends[1] == (prog.iterations - 1) * 2
    assert sends[2] == (prog.iterations - 1) * 2
    assert sends[3] == (prog.iterations - 1) * 1


def test_heat_converges_to_linear_profile():
    """With fixed 1/0 boundaries the field tends to a linear ramp."""
    prog = heat_program(n=16, p=2, iterations=2000)
    result = run_program(prog, make_cluster(2), fw=1)
    field = prog.gather(result.final_blocks)
    x = (np.arange(16) + 1) / 17.0
    expected = 1.0 - x
    np.testing.assert_allclose(field, expected, atol=0.01)


# ------------------------------------------------------------- Jacobi solver
def test_jacobi_system_generator():
    a, b = diagonally_dominant_system(20, seed=1)
    assert a.shape == (20, 20)
    diag = np.abs(np.diag(a))
    off = np.abs(a).sum(axis=1) - diag
    assert np.all(diag > off)
    with pytest.raises(ValueError):
        diagonally_dominant_system(0)
    with pytest.raises(ValueError):
        diagonally_dominant_system(5, dominance=0.5)


def test_jacobi_validation():
    a, b = diagonally_dominant_system(10)
    with pytest.raises(ValueError):
        JacobiSolver(a[:5], b, [1.0, 1.0], 5)
    bad = a.copy()
    bad[0, 0] = 0.0
    with pytest.raises(ValueError):
        JacobiSolver(bad, b, [1.0, 1.0], 5)
    with pytest.raises(ValueError):
        JacobiSolver(a, b, [1.0, 1.0], 5, x0=np.zeros(3))


def test_jacobi_fw0_matches_reference():
    a, b = diagonally_dominant_system(30, seed=2)
    prog = JacobiSolver(a, b, [1e6] * 3, 8, threshold=0.0)
    result = run_program(prog, make_cluster(3, latency=0.1), fw=0)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-12)


def test_jacobi_fw1_theta_zero_exact():
    a, b = diagonally_dominant_system(30, seed=3)
    prog = JacobiSolver(a, b, [1e6] * 3, 10, threshold=0.0)
    result = run_program(prog, make_cluster(3, latency=0.5), fw=1)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-10)


def test_jacobi_converges():
    a, b = diagonally_dominant_system(24, seed=4)
    prog = JacobiSolver(a, b, [1e6, 1e6], 60, threshold=0.0)
    result = run_program(prog, make_cluster(2, latency=0.2), fw=1)
    x = prog.gather(result.final_blocks)
    assert prog.residual(x) < 1e-6 * max(1.0, prog.residual(prog.x0))


def test_jacobi_rejections_decline_as_it_converges():
    """Converging dynamics: late-run speculations are nearly exact, so a
    fixed threshold rejects mostly early iterations."""
    a, b = diagonally_dominant_system(24, seed=5)
    prog = JacobiSolver(a, b, [1e6, 1e6], 40, threshold=1e-6)
    result = run_program(prog, make_cluster(2, latency=0.5), fw=1)
    total_rejects = sum(s.spec_rejected for s in result.stats)
    total_checks = sum(s.checks for s in result.stats)
    assert total_checks > 0
    # Not everything is rejected: the tail of the run speculates exactly.
    assert total_rejects < total_checks


# ----------------------------------------------------------------- Kuramoto
def test_kuramoto_validation():
    with pytest.raises(ValueError):
        KuramotoProgram(np.ones(5), np.zeros(4), [1.0], 5)
    with pytest.raises(ValueError):
        KuramotoProgram(np.ones(5), np.zeros(5), [1.0], 5, dt=0.0)


def test_kuramoto_fw0_matches_reference():
    prog = KuramotoProgram.random(40, [1e6] * 4, 10, seed=6, threshold=0.0)
    result = run_program(prog, make_cluster(4, latency=0.1), fw=0)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-12)


def test_kuramoto_fw1_theta_zero_exact():
    prog = KuramotoProgram.random(40, [1e6] * 4, 10, seed=7, threshold=0.0)
    result = run_program(prog, make_cluster(4, latency=0.5), fw=1)
    np.testing.assert_allclose(prog.gather(result.final_blocks), prog.reference(), atol=1e-10)


def test_kuramoto_linear_speculation_mostly_accepted():
    """Phases drift ~linearly, so linear extrapolation is rarely rejected
    even with a tight threshold."""
    prog = KuramotoProgram.random(60, [1e6] * 3, 15, seed=8, dt=0.01, threshold=1e-4)
    result = run_program(prog, make_cluster(3, latency=0.5), fw=1)
    assert result.rejection_rate < 0.5


def test_kuramoto_strong_coupling_synchronises():
    prog = KuramotoProgram.random(
        50, [1e6, 1e6], 400, seed=9, coupling=5.0, dt=0.02, threshold=0.0
    )
    result = run_program(prog, make_cluster(2), fw=1)
    theta = prog.gather(result.final_blocks)
    assert prog.synchrony(theta) > prog.synchrony(prog.theta0)
    assert prog.synchrony(theta) > 0.8
