"""Tests for the runtime ProtocolSanitizer.

Three layers:

* direct hook tests — each invariant fires on a crafted violation and
  stays quiet on the legal sequence;
* integration — a clean speculative run passes under ``sanitize=True``,
  and a driver whose forward-window gate is sabotaged is caught
  *during a real simulation*;
* wiring — the ``REPRO_SANITIZE`` environment flag and the CLI
  selftest.
"""

import numpy as np
import pytest

from repro.analysis import ProtocolSanitizer, ProtocolViolation, run_selftest
from repro.analysis.sanitizer import ENV_FLAG, sanitize_enabled, sanitizer_from_env
from repro.cli import main
from repro.core import SpeculativeDriver, run_program
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs

from tests.toy_programs import CoupledIncrement


def make_cluster(p, latency=0.0, capacity=1000.0):
    return Cluster(
        uniform_specs(p, capacity=capacity),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


# ------------------------------------------------------------- direct hooks
def test_monotonic_virtual_time_violation():
    san = ProtocolSanitizer()
    with pytest.raises(ProtocolViolation) as exc:
        san.on_event_processed(object(), now=1.0, prev_now=2.0)
    assert exc.value.invariant == "monotonic-virtual-time"


def test_monotonic_virtual_time_across_steps():
    san = ProtocolSanitizer()
    san.on_event_processed(object(), now=5.0, prev_now=4.0)
    with pytest.raises(ProtocolViolation):
        san.on_event_processed(object(), now=3.0, prev_now=3.0)


def test_event_state_machine_untriggered_event():
    class FakeEvent:
        triggered = False
        callbacks = []

    san = ProtocolSanitizer()
    with pytest.raises(ProtocolViolation) as exc:
        san.on_event_processed(FakeEvent(), now=0.0, prev_now=0.0)
    assert exc.value.invariant == "event-state-machine"


def test_event_state_machine_double_processing():
    class FakeEvent:
        triggered = True
        callbacks = None  # already consumed

    san = ProtocolSanitizer()
    with pytest.raises(ProtocolViolation) as exc:
        san.on_event_processed(FakeEvent(), now=0.0, prev_now=0.0)
    assert exc.value.invariant == "event-state-machine"


def test_verify_without_speculate():
    san = ProtocolSanitizer()
    with pytest.raises(ProtocolViolation) as exc:
        san.on_verify(0, 1, 3)
    assert exc.value.invariant == "verify-without-speculate"


def test_speculate_then_verify_is_legal():
    san = ProtocolSanitizer()
    san.on_speculate(0, 1, 3)
    san.on_verify(0, 1, 3)
    san.on_run_end()  # nothing outstanding


def test_outstanding_speculation_at_run_end():
    san = ProtocolSanitizer()
    san.on_speculate(0, 1, 3)
    with pytest.raises(ProtocolViolation) as exc:
        san.on_run_end()
    assert exc.value.invariant == "eventual-verification"


def test_forward_window_bound_fw0():
    san = ProtocolSanitizer()
    with pytest.raises(ProtocolViolation) as exc:
        san.on_compute_begin(0, t=2, verified_upto=1, fw=0)
    assert exc.value.invariant == "forward-window-bound"


def test_forward_window_bound_fw_exceeded():
    san = ProtocolSanitizer()
    san.on_compute_begin(0, t=3, verified_upto=1, fw=1)  # distance 1: legal
    with pytest.raises(ProtocolViolation) as exc:
        san.on_compute_begin(0, t=4, verified_upto=1, fw=1)  # distance 2
    assert exc.value.invariant == "forward-window-bound"


def test_cascade_order_violation():
    san = ProtocolSanitizer()
    san.on_cascade_begin(0, 4)
    san.on_cascade_step(0, 5)  # ascending: fine
    with pytest.raises(ProtocolViolation) as exc:
        san.on_cascade_step(0, 5)  # not strictly ascending
    assert exc.value.invariant == "cascade-order"


def test_cascade_step_outside_cascade():
    san = ProtocolSanitizer()
    with pytest.raises(ProtocolViolation) as exc:
        san.on_cascade_step(0, 2)
    assert exc.value.invariant == "cascade-order"


def test_violation_carries_phase_trace():
    san = ProtocolSanitizer()
    san.on_speculate(0, 1, 2)
    with pytest.raises(ProtocolViolation) as exc:
        san.on_verify(0, 1, 9)
    assert exc.value.trace  # non-empty excerpt
    assert any("speculate" in line for line in exc.value.trace)
    assert "recent phase trace" in str(exc.value)


# -------------------------------------------------------------- integration
def test_clean_speculative_run_passes_sanitizer():
    prog = CoupledIncrement(nprocs=3, iterations=6, coupling=0.2)
    driver = SpeculativeDriver(prog, make_cluster(3, latency=0.4), fw=2, sanitize=True)
    result = driver.run()
    assert driver.sanitizer is not None
    assert driver.sanitizer.events_checked > 0
    # Result identical to an unsanitized run: the sanitizer observes only.
    plain = run_program(
        CoupledIncrement(nprocs=3, iterations=6, coupling=0.2),
        make_cluster(3, latency=0.4),
        fw=2,
    )
    for rank in result.final_blocks:
        np.testing.assert_array_equal(result.final_blocks[rank], plain.final_blocks[rank])


class _UngatedDriver(SpeculativeDriver):
    """Driver with both forward-window gates sabotaged: ranks race
    ahead without waiting for verification — exactly the class of
    driver bug the sanitizer exists to catch."""

    def _window_ok(self, st, t):
        return True

    def _pre_send_horizon(self, st, t):
        return -1  # never wait before sending


def test_sanitizer_catches_forward_window_violation_in_real_run():
    prog = CoupledIncrement(nprocs=3, iterations=8, coupling=0.2)
    # Latency far above the per-iteration compute time: messages lag by
    # many iterations, so an ungated fw=1 rank exceeds its window fast.
    driver = _UngatedDriver(prog, make_cluster(3, latency=50.0), fw=1, sanitize=True)
    with pytest.raises(ProtocolViolation) as exc:
        driver.run()
    assert exc.value.invariant == "forward-window-bound"


def test_sanitize_false_disables_even_with_env(monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "1")
    prog = CoupledIncrement(nprocs=2, iterations=3)
    driver = SpeculativeDriver(prog, make_cluster(2), fw=1, sanitize=False)
    assert driver.sanitizer is None


# ------------------------------------------------------------------- wiring
def test_env_flag_parsing(monkeypatch):
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv(ENV_FLAG, value)
        assert sanitize_enabled()
        assert sanitizer_from_env() is not None
    for value in ("", "0", "no", "off"):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not sanitize_enabled()
        assert sanitizer_from_env() is None


def test_env_flag_arms_driver(monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "1")
    prog = CoupledIncrement(nprocs=2, iterations=3)
    driver = SpeculativeDriver(prog, make_cluster(2, latency=0.1), fw=1)
    assert isinstance(driver.sanitizer, ProtocolSanitizer)
    driver.run()  # and the run stays clean


def test_selftest_passes():
    assert run_selftest(verbose=False) == 0


def test_cli_sanitize_selftest(capsys):
    assert main(["lint", "--sanitize-selftest"]) == 0
    assert "sanitizer selftest ok" in capsys.readouterr().out
