"""Tests for the extended (variance + window aware) performance model."""

import pytest

from repro.perfmodel import (
    ExtendedPerformanceModel,
    PerformanceModel,
    VariabilityParams,
    section4_params,
)


def model(comm_cv=0.0, comp_cv=0.0, k1=0.02, bw_discount=1.0, seed=1, **kw):
    return ExtendedPerformanceModel(
        section4_params(k=0.02),
        VariabilityParams(comm_cv=comm_cv, comp_cv=comp_cv, k1=k1,
                          bw_discount=bw_discount, **kw),
        seed=seed,
    )


def test_variability_params_validation():
    with pytest.raises(ValueError):
        VariabilityParams(comm_cv=-1)
    with pytest.raises(ValueError):
        VariabilityParams(k1=1.5)
    with pytest.raises(ValueError):
        VariabilityParams(bw_discount=0.0)
    with pytest.raises(ValueError):
        VariabilityParams(correction_fraction=-1)


def test_rejection_probability_gap_squared():
    v = VariabilityParams(k1=0.02)
    assert v.rejection_probability(1, 2) == pytest.approx(0.02)
    assert v.rejection_probability(2, 2) == pytest.approx(0.08)
    assert v.rejection_probability(10, 2) == 1.0  # clamped
    with pytest.raises(ValueError):
        v.rejection_probability(0, 2)
    with pytest.raises(ValueError):
        v.rejection_probability(1, 0)


def test_bw_discount_reduces_rejections():
    v = VariabilityParams(k1=0.1, bw_discount=0.5)
    assert v.rejection_probability(2, 1) == pytest.approx(0.4)
    assert v.rejection_probability(2, 2) == pytest.approx(0.2)
    assert v.rejection_probability(2, 3) == pytest.approx(0.1)


def test_fw0_matches_deterministic_base_model():
    m = model(comm_cv=0.0, comp_cv=0.0)
    base = PerformanceModel(section4_params(k=0.02))
    assert m.expected_iteration_time(16, 0) == pytest.approx(base.t_nospec(16), rel=1e-6)


def test_p1_reduces_to_serial():
    m = model()
    base = PerformanceModel(section4_params(k=0.02))
    assert m.expected_iteration_time(1, 1) == base.t_serial()


def test_fw1_beats_fw0_when_comm_maskable():
    m = model(comm_cv=0.0)
    assert m.expected_iteration_time(16, 1) < m.expected_iteration_time(16, 0)


def test_variance_hurts_fw1():
    """Jensen: random comm around the same mean leaves unmaskable tails."""
    calm = model(comm_cv=0.0).expected_iteration_time(16, 1)
    noisy = model(comm_cv=1.5).expected_iteration_time(16, 1)
    assert noisy > calm


def test_deeper_window_recovers_variance_losses():
    m = model(comm_cv=1.5)
    t1 = m.expected_iteration_time(16, 1)
    t2 = m.expected_iteration_time(16, 2)
    t3 = m.expected_iteration_time(16, 3)
    assert t2 < t1
    assert t3 <= t2 + 1e-9


def test_optimal_fw_grows_with_comm_variance():
    calm = model(comm_cv=0.0).optimal_fw(16, max_fw=4)
    noisy = model(comm_cv=1.5).optimal_fw(16, max_fw=4)
    assert calm >= 1
    assert noisy >= calm


def test_high_rejection_cost_caps_the_window():
    """With error-prone speculation, deep windows stop paying."""
    cheap = model(comm_cv=1.5, k1=0.01).optimal_fw(16, max_fw=6)
    risky = model(comm_cv=1.5, k1=0.5).optimal_fw(16, max_fw=6)
    assert risky <= cheap


def test_bw_discount_improves_deep_windows():
    low_order = model(comm_cv=1.5, k1=0.3, bw_discount=1.0)
    t_bw1 = low_order.expected_iteration_time(16, 3, bw=1)
    t_bw3 = low_order.expected_iteration_time(16, 3, bw=3)
    assert t_bw3 == pytest.approx(t_bw1)  # discount 1.0: BW irrelevant
    smooth = model(comm_cv=1.5, k1=0.3, bw_discount=0.3)
    t_bw1 = smooth.expected_iteration_time(16, 3, bw=1)
    t_bw3 = smooth.expected_iteration_time(16, 3, bw=3)
    assert t_bw3 < t_bw1


def test_window_study_grid():
    m = model(comm_cv=1.0, k1=0.05, bw_discount=0.5)
    study = m.window_study(8, fws=range(0, 3), bws=(1, 2))
    assert len(study["grid"]) == 6
    assert study["best"] in study["grid"]
    assert study["grid"][study["best"]] == min(study["grid"].values())


def test_estimates_deterministic_given_seed():
    a = model(comm_cv=1.0, seed=3).expected_iteration_time(8, 2)
    b = model(comm_cv=1.0, seed=3).expected_iteration_time(8, 2)
    assert a == b


def test_expected_speedup_consistent():
    m = model(comm_cv=0.5)
    s = m.expected_speedup(8, 1)
    base = PerformanceModel(section4_params(k=0.02))
    assert s == pytest.approx(base.t_serial() / m.expected_iteration_time(8, 1))


def test_validation():
    with pytest.raises(ValueError):
        ExtendedPerformanceModel(section4_params(), VariabilityParams(), mc_iterations=5)
    m = model()
    with pytest.raises(ValueError):
        m.expected_iteration_time(8, -1)
    with pytest.raises(ValueError):
        m.optimal_fw(8, max_fw=0)
